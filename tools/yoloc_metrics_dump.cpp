// Run a short mixed-traffic benchmark against the serving scheduler and
// print the Prometheus text exposition (MetricsSnapshot::to_prometheus)
// to stdout — the operator-facing way to see exactly what a /metrics
// endpoint would serve, and the source of truth for tools/docs_check.sh
// (every emitted metric name must be documented in docs/serving.md).
//
//   build/yoloc_metrics_dump [--seconds=S] [--policy=strict|weighted]
//                            [--json] [--trace-out=PATH]
//                            [--list-trace-spans]
//
// The workload exercises every metric family: all three lanes carry
// traffic, one request is submitted with an already-dead deadline
// (rejected at admission) and a burst of deliberately tight deadlines
// populates the expired counters/histogram.
//
// --trace-out=PATH runs the same workload with trace_sampling = 1.0 and
// writes the chrome://tracing JSON to PATH — the quickest way to get a
// real flame graph out of the scheduler. --record-out=PATH records the
// admission stream and saves a .yoloctrace workload artifact replayable
// with yoloc_replay. --list-trace-spans prints the span taxonomy (one
// name per line) and exits; tools/docs_check.sh uses it to keep
// docs/serving.md in sync with the code, the same contract the metric
// families live under.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "nn/zoo.hpp"
#include "runtime/deployment_plan.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kImageSize = 16;

std::unique_ptr<DeploymentPlan> build_plan() {
  ZooConfig zoo;
  zoo.image_size = kImageSize;
  zoo.base_width = 8;
  zoo.num_classes = 10;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Rng rng(7);
  Tensor calib =
      Tensor::rand_uniform({8, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = MacroMvmEngine::Mode::kExactCost;
  return std::make_unique<DeploymentPlan>(std::move(model), calib,
                                          std::move(options));
}

void drain(std::vector<std::future<Tensor>>& futures) {
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception&) {
      // Expected for the shed best-effort work; it is what populates the
      // expired/rejected metric families.
    }
  }
  futures.clear();
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 0.3;
  bool weighted = true;
  bool json = false;
  std::string trace_out;
  std::string record_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--policy=strict") == 0) {
      weighted = false;
    } else if (std::strcmp(argv[i], "--policy=weighted") == 0) {
      weighted = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--record-out=", 13) == 0) {
      record_out = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--list-trace-spans") == 0) {
      for (const char* name : kTraceSpanNames) std::printf("%s\n", name);
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: yoloc_metrics_dump [--seconds=S] "
                   "[--policy=strict|weighted] [--json] [--trace-out=PATH] "
                   "[--record-out=PATH] [--list-trace-spans]\n");
      return 2;
    }
  }

  auto plan = build_plan();
  SchedulerOptions options;
  options.max_microbatch = 8;
  options.max_queue_depth = 256;
  if (!trace_out.empty()) options.trace_sampling = 1.0;
  if (!record_out.empty()) options.record_admissions = true;
  if (weighted) {
    options.lane_weights = {8.0, 3.0, 1.0};
    options.lane_slo[static_cast<std::size_t>(Priority::kInteractive)] =
        milliseconds(20);
  }
  Scheduler scheduler(*plan, options);

  Rng rng(123);
  const Tensor one =
      Tensor::rand_uniform({1, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  const Tensor four =
      Tensor::rand_uniform({4, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);

  // One guaranteed admission rejection (deadline already dead).
  try {
    (void)scheduler.submit(one, {Priority::kBestEffort, -milliseconds(1)})
        .get();
  } catch (const std::exception&) {
  }

  std::vector<std::future<Tensor>> in_flight;
  const auto start = Clock::now();
  while (std::chrono::duration<double>(Clock::now() - start).count() <
         seconds) {
    in_flight.push_back(
        scheduler.submit(one, {Priority::kInteractive, milliseconds(250)}));
    in_flight.push_back(
        scheduler.submit(four, {Priority::kBatch, milliseconds(0)}));
    in_flight.push_back(
        scheduler.submit(four, {Priority::kBatch, milliseconds(0)}));
    // Tight enough that a loaded scheduler sheds some of this class.
    in_flight.push_back(
        scheduler.submit(one, {Priority::kBestEffort, microseconds(200)}));
    if (in_flight.size() >= 64) drain(in_flight);
  }
  drain(in_flight);
  scheduler.wait_idle();

  if (!trace_out.empty()) {
    scheduler.write_trace(trace_out);
    std::fprintf(stderr, "wrote trace to %s\n", trace_out.c_str());
  }
  if (!record_out.empty()) {
    save_workload_trace(scheduler.recorded_trace(), record_out);
    std::fprintf(stderr, "wrote workload trace to %s\n", record_out.c_str());
  }
  const std::string text =
      json ? scheduler.metrics_snapshot().to_json() : scheduler.to_prometheus();
  std::fputs(text.c_str(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}
