#!/usr/bin/env bash
# docs_check.sh — fail when the operator docs drift from the code.
#
#   tools/docs_check.sh <yoloc_metrics_dump> <docs/serving.md> [yoloc_serve]
#
# Three contracts, one gate:
#   * every metric family emitted by the Prometheus exposition (the dump
#     tool runs a short real traffic mix against the scheduler) must
#     appear in the docs page, and must carry a # TYPE line;
#   * every trace span name the collector can emit
#     (--list-trace-spans) must be documented;
#   * every HTTP endpoint the serving front-end routes
#     (yoloc_serve --list-endpoints) must be documented, as `path`.
# The third argument is optional so older invocations keep working.
# Wired as the `docs`-labeled CTest and the `docs-check` CMake target.
#
# NOTE on pipelines: under `set -o pipefail`, feeding a large here-string
# into `grep -q` can kill the producer with SIGPIPE (grep -q exits at the
# first match, closing the pipe early) and fail the whole script with
# 141 even though the check PASSED. Every exposition probe below
# therefore greps a temp file instead of a pipe.

set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: docs_check.sh <yoloc_metrics_dump> <docs/serving.md> [yoloc_serve]" >&2
  exit 2
fi
bin="$1"
docs="$2"
serve_bin="${3:-}"

if [ ! -x "$bin" ]; then
  echo "docs-check: dump binary '$bin' not found/executable" >&2
  exit 2
fi
if [ ! -f "$docs" ]; then
  echo "docs-check: docs page '$docs' not found" >&2
  exit 2
fi
if [ -n "$serve_bin" ] && [ ! -x "$serve_bin" ]; then
  echo "docs-check: serve binary '$serve_bin' not found/executable" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
exposition_file="$workdir/exposition.txt"
"$bin" --seconds=0.05 > "$exposition_file"

# Family names: token before '{' or ' ' on sample lines, series suffixes
# folded into their histogram family.
names=$(grep -v '^#' "$exposition_file" \
  | sed -e 's/{.*//' -e 's/ .*//' \
  | sed -e 's/_bucket$//' -e 's/_sum$//' -e 's/_count$//' \
  | sort -u)

if [ -z "$names" ]; then
  echo "docs-check: exposition produced no metrics" >&2
  exit 1
fi

missing=0
for name in $names; do
  if ! grep -q "$name" "$docs"; then
    echo "docs-check: metric '$name' is not documented in $docs" >&2
    missing=1
  fi
done

# Sanity: the exposition must declare a type for every family it emits.
for name in $names; do
  if ! grep -q "^# TYPE $name " "$exposition_file"; then
    echo "docs-check: metric '$name' emitted without a # TYPE line" >&2
    missing=1
  fi
done

# Trace span taxonomy: every span name the collector can emit must be
# documented alongside the metrics.
spans=$("$bin" --list-trace-spans)
if [ -z "$spans" ]; then
  echo "docs-check: --list-trace-spans produced no span names" >&2
  exit 1
fi
for span in $spans; do
  if ! grep -q "\`$span\`" "$docs"; then
    echo "docs-check: trace span '$span' is not documented in $docs" >&2
    missing=1
  fi
done

# HTTP endpoint coverage: every routed path documented as `path`.
endpoint_count=0
if [ -n "$serve_bin" ]; then
  endpoints=$("$serve_bin" --list-endpoints)
  if [ -z "$endpoints" ]; then
    echo "docs-check: --list-endpoints produced no endpoint paths" >&2
    exit 1
  fi
  for endpoint in $endpoints; do
    if ! grep -q "\`$endpoint\`" "$docs"; then
      echo "docs-check: HTTP endpoint '$endpoint' is not documented in $docs" >&2
      missing=1
    fi
  done
  endpoint_count=$(printf '%s\n' "$endpoints" | wc -l)
fi

if [ "$missing" -ne 0 ]; then
  exit 1
fi
count=$(printf '%s\n' "$names" | wc -l)
span_count=$(printf '%s\n' "$spans" | wc -l)
echo "docs-check: all $count metric families, $span_count trace spans and $endpoint_count HTTP endpoints documented in $docs"
