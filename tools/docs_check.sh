#!/usr/bin/env bash
# docs_check.sh — fail when a metric emitted by the Prometheus
# exposition is missing from the operator docs.
#
#   tools/docs_check.sh <yoloc_metrics_dump binary> <docs/serving.md>
#
# Runs the dump tool (a short real traffic mix against the scheduler),
# extracts every metric family name from the exposition (stripping the
# histogram _bucket/_sum/_count series suffixes), and greps the docs page
# for each. The trace span taxonomy is held to the same contract: every
# span name the collector can emit (--list-trace-spans) must appear in
# the docs. Wired as the `docs`-labeled CTest and the `docs-check` CMake
# target so the docs cannot silently drift from the code.

set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: docs_check.sh <yoloc_metrics_dump> <docs/serving.md>" >&2
  exit 2
fi
bin="$1"
docs="$2"

if [ ! -x "$bin" ]; then
  echo "docs-check: dump binary '$bin' not found/executable" >&2
  exit 2
fi
if [ ! -f "$docs" ]; then
  echo "docs-check: docs page '$docs' not found" >&2
  exit 2
fi

exposition=$("$bin" --seconds=0.05)

# Family names: token before '{' or ' ' on sample lines, series suffixes
# folded into their histogram family.
names=$(printf '%s\n' "$exposition" \
  | grep -v '^#' \
  | sed -e 's/{.*//' -e 's/ .*//' \
  | sed -e 's/_bucket$//' -e 's/_sum$//' -e 's/_count$//' \
  | sort -u)

if [ -z "$names" ]; then
  echo "docs-check: exposition produced no metrics" >&2
  exit 1
fi

missing=0
for name in $names; do
  if ! grep -q "$name" "$docs"; then
    echo "docs-check: metric '$name' is not documented in $docs" >&2
    missing=1
  fi
done

# Sanity: the exposition must declare a type for every family it emits.
for name in $names; do
  if ! printf '%s\n' "$exposition" | grep -q "^# TYPE $name "; then
    echo "docs-check: metric '$name' emitted without a # TYPE line" >&2
    missing=1
  fi
done

# Trace span taxonomy: every span name the collector can emit must be
# documented alongside the metrics.
spans=$("$bin" --list-trace-spans)
if [ -z "$spans" ]; then
  echo "docs-check: --list-trace-spans produced no span names" >&2
  exit 1
fi
for span in $spans; do
  if ! grep -q "\`$span\`" "$docs"; then
    echo "docs-check: trace span '$span' is not documented in $docs" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  exit 1
fi
count=$(printf '%s\n' "$names" | wc -l)
span_count=$(printf '%s\n' "$spans" | wc -l)
echo "docs-check: all $count metric families and $span_count trace spans documented in $docs"
