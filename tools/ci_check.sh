#!/usr/bin/env bash
# ci_check.sh — the full local CI gate, one command, one summary.
#
#   tools/ci_check.sh <source-dir> [build-dir]
#
# Three gates, in order:
#   1. tier-1   — the plain test suite in <build-dir> (configured +
#                 built here if the directory is missing);
#   2. tsan     — a ThreadSanitizer build (<build-dir>-tsan) running the
#                 concurrency-heavy labels: serve | trace | fault;
#   3. asan     — an AddressSanitizer build (<build-dir>-asan) running
#                 the wire/format labels: http | serde.
#
# Every gate runs even after an earlier one fails, so a single pass
# reports ALL the breakage; the exit code is non-zero when any gate
# failed. Wired as the `check` CMake target:
#   cmake --build build --target check
#
# Sanitizer builds are configured with the repo's own YOLOC_TSAN /
# YOLOC_ASAN options (mutually exclusive, hence the separate build
# trees) and are incremental — rerunning the gate only rebuilds what
# changed.

set -uo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: ci_check.sh <source-dir> [build-dir]" >&2
  exit 2
fi
src="$1"
build="${2:-$src/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

declare -a gate_names=()
declare -a gate_results=()

# run_gate NAME BUILD_DIR CMAKE_EXTRA_ARGS CTEST_ARGS...
run_gate() {
  local name="$1" dir="$2" extra="$3"
  shift 3
  local log
  log="$(mktemp -t yoloc_ci_${name}.XXXXXX)"
  echo "== gate: ${name} (${dir}) =="
  local ok=1
  # shellcheck disable=SC2086  # $extra is deliberately word-split
  if ! cmake -B "$dir" -S "$src" $extra >"$log" 2>&1; then
    ok=0
  elif ! cmake --build "$dir" -j "$jobs" >>"$log" 2>&1; then
    ok=0
  elif ! ctest --test-dir "$dir" --output-on-failure -j "$jobs" "$@" \
       >>"$log" 2>&1; then
    ok=0
  fi
  if [ "$ok" = 1 ]; then
    tail -n 3 "$log" | sed 's/^/  /'
    gate_results+=("PASS")
  else
    echo "-- ${name} FAILED; log tail:"
    tail -n 40 "$log" | sed 's/^/  /'
    echo "-- full log: $log"
    gate_results+=("FAIL")
  fi
  gate_names+=("$name")
  [ "$ok" = 1 ] && rm -f "$log"
  return 0
}

run_gate tier-1 "$build" ""
run_gate tsan "${build}-tsan" "-DYOLOC_TSAN=ON" -L "serve|trace|fault"
run_gate asan "${build}-asan" "-DYOLOC_ASAN=ON" -L "http|serde"

echo
echo "== ci_check summary =="
status=0
for i in "${!gate_names[@]}"; do
  printf '  %-8s %s\n' "${gate_names[$i]}" "${gate_results[$i]}"
  [ "${gate_results[$i]}" = "PASS" ] || status=1
done
exit "$status"
