#!/usr/bin/env bash
# refresh_bench.sh — regenerate the committed bench snapshots in-place.
#
#   tools/refresh_bench.sh <build-dir> [seconds-per-cell]
#
# Runs the two always-available self-timed benches and rewrites
#   bench/BENCH_macro_mvm.json        (one JSON line per kernel cell)
#   bench/BENCH_serving.json          (one JSON line per serving config)
#   bench/BENCH_http_serving.json     (one JSON line per loadgen scenario)
#   bench/BENCH_fault_resilience.json (one JSON line per resilience config)
# keeping only the JSON lines (stdout commentary is dropped), so the
# committed snapshots stay machine-diffable. Wired as the `bench` CMake
# target: `cmake --build build --target bench` refreshes all files.
#
# The HTTP section stands up a real yoloc_serve (ephemeral port, plan
# written by serve_from_plan --save) and drives it with yoloc_loadgen:
# one closed-loop capacity row, one open-loop row paced below capacity
# (zero 5xx expected), one open-loop row over a deliberately tiny
# admission queue (429s expected — exercising the shed path).
#
# Snapshots are a perf *trajectory*, not a CI gate: absolute numbers move
# with the host, but the within-file ratios (packed-vs-legacy speedup,
# worker scaling) are the signal. Each bench self-checks bit-identity
# before timing, so a refresh also re-verifies the packed kernel.

set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: refresh_bench.sh <build-dir> [seconds-per-cell]" >&2
  exit 2
fi
build="$1"
seconds="${2:-0.05}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/bench"
mkdir -p "$out"

for bin in bench_macro_mvm bench_serving_throughput \
           yoloc_serve yoloc_loadgen serve_from_plan; do
  if [ ! -x "$build/$bin" ]; then
    echo "refresh_bench: '$build/$bin' not built" >&2
    exit 2
  fi
done

echo "refresh_bench: bench_macro_mvm --seconds=$seconds" >&2
"$build/bench_macro_mvm" --seconds="$seconds" \
  | grep '^{' > "$out/BENCH_macro_mvm.json"

echo "refresh_bench: bench_serving_throughput --seconds=$seconds" >&2
"$build/bench_serving_throughput" --seconds="$seconds" \
  | grep '^{' > "$out/BENCH_serving.json"

# ------------------------------------------------------------ HTTP serving
# Drives a live yoloc_serve over loopback. Durations scale with the
# per-cell budget (40x, floor 1 s) so a default refresh spends ~6 s here.
http_seconds=$(awk -v s="$seconds" 'BEGIN { d = s * 40; if (d < 1) d = 1; printf "%.1f", d }')
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

plan="$workdir/bench.yolocplan"
start_server() {  # start_server <extra flags...>; sets server_pid, port_file
  port_file="$workdir/port"
  rm -f "$port_file"
  "$build/yoloc_serve" --plan "$plan" --port 0 \
      --port-file "$port_file" --workers 2 "$@" >/dev/null 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && return 0
    kill -0 "$server_pid" 2>/dev/null || {
      echo "refresh_bench: yoloc_serve died during startup" >&2; exit 1; }
    sleep 0.05
  done
  echo "refresh_bench: yoloc_serve never published its port" >&2
  exit 1
}

stop_server() {
  kill -TERM "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

tag_row() {  # tag_row <scenario> <row-file> -> appends annotated row
  sed "s/^{\"bench\":\"http_serving\",/{\"bench\":\"http_serving\",\"scenario\":\"$1\",/" \
      "$2" >> "$out/BENCH_http_serving.json"
}

echo "refresh_bench: http serving ($http_seconds s per scenario)" >&2
"$build/serve_from_plan" --save "$workdir/bench.yolocplan" >/dev/null
: > "$out/BENCH_http_serving.json"

# Capacity: closed loop against a generous queue.
start_server --max-queue-depth 256
"$build/yoloc_loadgen" --port-file "$port_file" --mode closed \
    --concurrency 4 --duration-s "$http_seconds" --priority-mix 2,1,1 \
    | grep '^{' > "$workdir/closed.json"
tag_row closed_capacity "$workdir/closed.json"
capacity=$(sed 's/.*"images_per_s":\([0-9.]*\).*/\1/' "$workdir/closed.json")

# Open loop below capacity: zero 5xx expected under the admission limit.
under_rate=$(awk -v c="$capacity" 'BEGIN { r = c * 0.5; if (r < 1) r = 1; printf "%.0f", r }')
"$build/yoloc_loadgen" --port-file "$port_file" --mode open \
    --rate "$under_rate" --concurrency 4 --duration-s "$http_seconds" \
    --priority-mix 2,1,1 | grep '^{' > "$workdir/under.json"
tag_row open_under_capacity "$workdir/under.json"
stop_server

# Open loop over a tiny admission queue: 429s expected, not collapse.
start_server --max-queue-depth 2
over_rate=$(awk -v c="$capacity" 'BEGIN { r = c * 3; if (r < 10) r = 10; printf "%.0f", r }')
"$build/yoloc_loadgen" --port-file "$port_file" --mode open \
    --rate "$over_rate" --concurrency 4 --duration-s "$http_seconds" \
    --priority-mix 2,1,1 | grep '^{' > "$workdir/over.json"
tag_row open_over_tiny_queue "$workdir/over.json"
stop_server

# ------------------------------------------------------ fault resilience
# One closed-loop probe against four resilience configs of the SAME
# model. The signal is relational: faults_off must sit within noise of
# no_fault_config (the dormant fault model is one flag check per MVM —
# the derived overhead row makes the ratio explicit), breaker_tripped
# serves everything on the 1 surviving worker (throughput holds when the
# host is CPU-bound below the worker count, but queue-wait latency
# rises), and degraded should show 503s on the shed lanes while
# interactive rides through error-free.
echo "refresh_bench: fault resilience ($http_seconds s per scenario)" >&2
: > "$out/BENCH_fault_resilience.json"
tag_fault_row() {  # tag_fault_row <scenario> <row-file>
  sed "s/^{\"bench\":\"http_serving\",/{\"bench\":\"fault_resilience\",\"scenario\":\"$1\",/" \
      "$2" >> "$out/BENCH_fault_resilience.json"
}

"$build/serve_from_plan" --save "$workdir/faultoff.yolocplan" \
    --fault-stuck 0.02 --fault-flip 0.0005 --fault-inactive \
    --canaries 4 >/dev/null

# Baseline: no fault config in the plan at all (v1 artifact).
plan="$workdir/bench.yolocplan"
start_server --max-queue-depth 256
"$build/yoloc_loadgen" --port-file "$port_file" --mode closed \
    --concurrency 4 --duration-s "$http_seconds" --priority-mix 2,1,1 \
    | grep '^{' > "$workdir/no_fault.json"
tag_fault_row no_fault_config "$workdir/no_fault.json"
stop_server

# Dormant faults + recorded canaries: the fault-off hot path.
plan="$workdir/faultoff.yolocplan"
start_server --max-queue-depth 256
"$build/yoloc_loadgen" --port-file "$port_file" --mode closed \
    --concurrency 4 --duration-s "$http_seconds" --priority-mix 2,1,1 \
    | grep '^{' > "$workdir/faults_off.json"
tag_fault_row faults_off "$workdir/faults_off.json"
stop_server

awk -v base="$(sed 's/.*"images_per_s":\([0-9.]*\).*/\1/' "$workdir/no_fault.json")" \
    -v off="$(sed 's/.*"images_per_s":\([0-9.]*\).*/\1/' "$workdir/faults_off.json")" \
    'BEGIN { printf "{\"bench\":\"fault_resilience\",\"scenario\":\"faults_off_overhead\",\"baseline_images_per_s\":%.2f,\"faults_off_images_per_s\":%.2f,\"overhead_pct\":%.2f}\n", base, off, (base - off) / base * 100 }' \
    >> "$out/BENCH_fault_resilience.json"

# Breaker force-tripped on 1 of 2 workers: ~half capacity, zero errors.
start_server --max-queue-depth 256 --trip-workers 1
"$build/yoloc_loadgen" --port-file "$port_file" --mode closed \
    --concurrency 4 --duration-s "$http_seconds" --priority-mix 2,1,1 \
    | grep '^{' > "$workdir/tripped.json"
tag_fault_row breaker_tripped "$workdir/tripped.json"
stop_server

# Degraded with shedding: 1/2 healthy is below both thresholds, so the
# batch and best-effort lanes take 503s while interactive still serves.
start_server --max-queue-depth 256 --trip-workers 1 \
    --shed-best-effort-below 0.75 --shed-batch-below 0.6
"$build/yoloc_loadgen" --port-file "$port_file" --mode closed \
    --concurrency 4 --duration-s "$http_seconds" --priority-mix 2,1,1 \
    | grep '^{' > "$workdir/degraded.json"
tag_fault_row degraded_shedding "$workdir/degraded.json"
stop_server

echo "refresh_bench: wrote $(wc -l < "$out/BENCH_macro_mvm.json") macro rows," \
     "$(wc -l < "$out/BENCH_serving.json") serving rows," \
     "$(wc -l < "$out/BENCH_http_serving.json") http rows," \
     "$(wc -l < "$out/BENCH_fault_resilience.json") resilience rows into $out" >&2
