#!/usr/bin/env bash
# refresh_bench.sh — regenerate the committed bench snapshots in-place.
#
#   tools/refresh_bench.sh <build-dir> [seconds-per-cell]
#
# Runs the two always-available self-timed benches and rewrites
#   bench/BENCH_macro_mvm.json   (one JSON line per kernel cell)
#   bench/BENCH_serving.json     (one JSON line per serving config)
# keeping only the JSON lines (stdout commentary is dropped), so the
# committed snapshots stay machine-diffable. Wired as the `bench` CMake
# target: `cmake --build build --target bench` refreshes both files.
#
# Snapshots are a perf *trajectory*, not a CI gate: absolute numbers move
# with the host, but the within-file ratios (packed-vs-legacy speedup,
# worker scaling) are the signal. Each bench self-checks bit-identity
# before timing, so a refresh also re-verifies the packed kernel.

set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: refresh_bench.sh <build-dir> [seconds-per-cell]" >&2
  exit 2
fi
build="$1"
seconds="${2:-0.05}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo/bench"
mkdir -p "$out"

for bin in bench_macro_mvm bench_serving_throughput; do
  if [ ! -x "$build/$bin" ]; then
    echo "refresh_bench: '$build/$bin' not built" >&2
    exit 2
  fi
done

echo "refresh_bench: bench_macro_mvm --seconds=$seconds" >&2
"$build/bench_macro_mvm" --seconds="$seconds" \
  | grep '^{' > "$out/BENCH_macro_mvm.json"

echo "refresh_bench: bench_serving_throughput --seconds=$seconds" >&2
"$build/bench_serving_throughput" --seconds="$seconds" \
  | grep '^{' > "$out/BENCH_serving.json"

echo "refresh_bench: wrote $(wc -l < "$out/BENCH_macro_mvm.json") macro rows," \
     "$(wc -l < "$out/BENCH_serving.json") serving rows into $out" >&2
