// HTTP serving daemon: load a .yolocplan artifact and serve it over the
// scheduler's HTTP front-end until SIGTERM/SIGINT, then drain gracefully
// (stop accepting, finish queued lanes by priority, flush, exit).
//
//   build/yoloc_serve --plan model.yolocplan --port 8080
//   build/yoloc_serve --plan model.yolocplan --port 0 --port-file /tmp/port
//
// --port 0 binds an ephemeral port; --port-file writes the bound port so
// harnesses (tests, refresh_bench.sh) can find it without racing.
// --list-endpoints prints the routed paths one per line, which
// tools/docs_check.sh diffs against docs/serving.md.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "runtime/plan_serde.hpp"
#include "serve/http_server.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace yoloc;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: yoloc_serve --plan PATH [options]\n"
      "  --plan PATH             .yolocplan artifact to serve (required)\n"
      "  --bind ADDR             bind address (default 127.0.0.1)\n"
      "  --port N                TCP port; 0 = ephemeral (default 0)\n"
      "  --port-file PATH        write the bound port to PATH\n"
      "  --workers N             scheduler workers (default: hardware)\n"
      "  --max-microbatch N      batch fusion cap; 1 = deterministic\n"
      "  --max-queue-depth N     admission cap per lane; 0 = unlimited\n"
      "  --default-deadline-ms X deadline for requests without one\n"
      "  --weighted              DWRR lane weights 8:3:1 instead of strict\n"
      "  --handler-threads N     HTTP handler pool size (default 4)\n"
      "  --max-connections N     concurrent connection cap (default 256)\n"
      "  --read-timeout-ms N     per-connection read deadline\n"
      "  --write-timeout-ms N    per-connection write deadline\n"
      "  --list-endpoints        print routed endpoint paths and exit\n"
      "resilience (see docs/serving.md, 'Failure modes'):\n"
      "  --canary-period-ms N    replay plan canaries per worker every N ms\n"
      "                          (0 = off; needs a plan with a canary suite)\n"
      "  --watchdog-timeout-ms N declare a batch hung after N ms (0 = off)\n"
      "  --shed-best-effort-below X  shed best-effort admissions when the\n"
      "                          healthy-worker fraction drops below X\n"
      "  --shed-batch-below X    shed batch admissions below X too\n"
      "  --trip-workers N        open the breaker on workers [0, N) at start\n"
      "chaos (deterministic fault drills):\n"
      "  --fault-after-s X       activate the plan's fault models after X s\n"
      "  --fault-clear-after-s X deactivate them again after X s\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path;
  std::string port_file;
  SchedulerOptions sched;
  HttpServerOptions http;
  int trip_workers = 0;
  double fault_after_s = -1.0;
  double fault_clear_after_s = -1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list-endpoints") {
      for (const char* endpoint : kHttpEndpoints) {
        std::printf("%s\n", endpoint);
      }
      return 0;
    }
    if (arg == "--weighted") {
      sched.lane_weights = LaneWeights{{8.0, 3.0, 1.0}};
      continue;
    }
    const char* value = next();
    if (value == nullptr) return usage();
    if (arg == "--plan") {
      plan_path = value;
    } else if (arg == "--bind") {
      http.bind_address = value;
    } else if (arg == "--port") {
      http.port = std::atoi(value);
    } else if (arg == "--port-file") {
      port_file = value;
    } else if (arg == "--workers") {
      sched.workers = std::atoi(value);
    } else if (arg == "--max-microbatch") {
      sched.max_microbatch = std::atoi(value);
    } else if (arg == "--max-queue-depth") {
      sched.max_queue_depth =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--default-deadline-ms") {
      sched.default_deadline = std::chrono::nanoseconds(
          static_cast<std::int64_t>(std::atof(value) * 1e6));
    } else if (arg == "--handler-threads") {
      http.handler_threads = std::atoi(value);
    } else if (arg == "--max-connections") {
      http.max_connections = std::atoi(value);
    } else if (arg == "--read-timeout-ms") {
      http.read_timeout = std::chrono::milliseconds(std::atoll(value));
    } else if (arg == "--write-timeout-ms") {
      http.write_timeout = std::chrono::milliseconds(std::atoll(value));
    } else if (arg == "--canary-period-ms") {
      sched.resilience.canary_period =
          std::chrono::milliseconds(std::atoll(value));
    } else if (arg == "--watchdog-timeout-ms") {
      sched.resilience.watchdog_timeout =
          std::chrono::milliseconds(std::atoll(value));
    } else if (arg == "--shed-best-effort-below") {
      sched.resilience.shed_best_effort_below = std::atof(value);
    } else if (arg == "--shed-batch-below") {
      sched.resilience.shed_batch_below = std::atof(value);
    } else if (arg == "--trip-workers") {
      trip_workers = std::atoi(value);
    } else if (arg == "--fault-after-s") {
      fault_after_s = std::atof(value);
    } else if (arg == "--fault-clear-after-s") {
      fault_clear_after_s = std::atof(value);
    } else {
      return usage();
    }
  }
  if (plan_path.empty()) return usage();

  try {
    auto plan = load_plan(plan_path);
    Scheduler scheduler(*plan, sched);
    HttpServer server(scheduler, *plan, http, plan_path);

    for (int w = 0; w < trip_workers && w < scheduler.worker_count(); ++w) {
      scheduler.trip_breaker(w);
    }

    // Chaos timer: flip the plan's fault models on (and optionally back
    // off) at the configured offsets — a deterministic in-process fault
    // drill the canary/breaker pipeline is expected to catch.
    std::atomic<bool> chaos_stop{false};
    std::thread chaos_thread;
    if (fault_after_s >= 0.0) {
      chaos_thread = std::thread([&plan, &chaos_stop, fault_after_s,
                                  fault_clear_after_s] {
        const auto set_faults = [&plan](bool active) {
          if (FaultModel* f = plan->rom_macro().fault_model()) {
            f->set_active(active);
          }
          if (FaultModel* f = plan->sram_macro().fault_model()) {
            f->set_active(active);
          }
        };
        const auto start = std::chrono::steady_clock::now();
        const auto elapsed_s = [&start] {
          return std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
              .count();
        };
        while (!chaos_stop.load() && elapsed_s() < fault_after_s) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (chaos_stop.load()) return;
        set_faults(true);
        std::printf("{\"event\":\"chaos\",\"faults\":\"active\"}\n");
        std::fflush(stdout);
        if (fault_clear_after_s < 0.0) return;
        while (!chaos_stop.load() && elapsed_s() < fault_clear_after_s) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (chaos_stop.load()) return;
        set_faults(false);
        std::printf("{\"event\":\"chaos\",\"faults\":\"cleared\"}\n");
        std::fflush(stdout);
      });
    }

    if (!port_file.empty()) {
      // Write-then-rename so a reader never sees a half-written port.
      const std::string tmp = port_file + ".tmp";
      std::ofstream out(tmp);
      out << server.port() << "\n";
      out.close();
      if (!out || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        std::fprintf(stderr, "yoloc_serve: cannot write port file %s\n",
                     port_file.c_str());
        return 1;
      }
    }
    std::printf("yoloc_serve: %s on %s:%d (%d workers, %d handler threads, "
                "%d quantized layers)\n",
                plan_path.c_str(), http.bind_address.c_str(), server.port(),
                scheduler.worker_count(), http.handler_threads,
                plan->quantized_layer_count());
    std::fflush(stdout);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("yoloc_serve: draining...\n");
    std::fflush(stdout);
    chaos_stop.store(true);
    if (chaos_thread.joinable()) chaos_thread.join();
    server.drain();
    scheduler.shutdown();
    const ResilienceSnapshot res = scheduler.resilience_snapshot();
    if (res.canary_pass + res.canary_fail + res.watchdog_fires +
            res.breaker_trips >
        0) {
      std::printf(
          "{\"event\":\"resilience\",\"canary_pass\":%llu,"
          "\"canary_fail\":%llu,\"breaker_trips\":%llu,"
          "\"breaker_recoveries\":%llu,\"watchdog_fires\":%llu}\n",
          static_cast<unsigned long long>(res.canary_pass),
          static_cast<unsigned long long>(res.canary_fail),
          static_cast<unsigned long long>(res.breaker_trips),
          static_cast<unsigned long long>(res.breaker_recoveries),
          static_cast<unsigned long long>(res.watchdog_fires));
    }
    const HttpServerStats stats = server.stats();
    std::printf(
        "{\"event\":\"shutdown\",\"connections\":%llu,\"requests\":%llu,"
        "\"responses_2xx\":%llu,\"responses_4xx\":%llu,"
        "\"responses_5xx\":%llu,\"read_timeouts\":%llu}\n",
        static_cast<unsigned long long>(stats.connections_accepted),
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.responses_2xx),
        static_cast<unsigned long long>(stats.responses_4xx),
        static_cast<unsigned long long>(stats.responses_5xx),
        static_cast<unsigned long long>(stats.read_timeouts));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "yoloc_serve: %s\n", e.what());
    return 1;
  }
}
