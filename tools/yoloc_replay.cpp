// yoloc_replay — deterministically replay a recorded serving workload
// against a deployed plan.
//
//   build/yoloc_replay TRACE --plan=FILE [--workers=N]
//                      [--max-microbatch=M] [--no-pace] [--speed=X]
//                      [--seed=N] [--trace-out=PATH] [--check] [--json]
//
// TRACE is a .yoloctrace artifact (record one with
// `yoloc_metrics_dump --record-out=...` or any scheduler running with
// record_admissions); --plan is a .yolocplan deployment image. The
// replay submits the recorded admission stream single-threaded in
// record order — reproducing admission ids, and with them the
// noise-stream offsets behind the determinism contract — against a
// fresh Scheduler, then prints the recorded-vs-replayed per-class
// outcomes and the usual metrics snapshot.
//
// Pacing is on by default (inter-arrival gaps are slept out; --speed=2
// replays twice as fast); --no-pace floods the scheduler as fast as it
// can accept. --workers / --max-microbatch default to the recorded
// scheduler shape so a bare replay reproduces the original run;
// override them to ask "what if" questions of a production trace
// (fewer workers, different batching) without re-driving live traffic.
// --trace-out additionally samples every replayed request and writes
// the chrome://tracing JSON. --check exits 1 when the replayed
// per-class outcome counts differ from the recorded ones.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "runtime/plan_serde.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload_trace.hpp"

namespace {

using namespace yoloc;

void print_counts(const char* what,
                  const std::array<std::uint64_t, kPriorityClassCount>& served,
                  const std::array<std::uint64_t, kPriorityClassCount>& expired,
                  const std::array<std::uint64_t, kPriorityClassCount>& rejected) {
  std::printf("%-9s", what);
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    std::printf("  %s %llu/%llu/%llu",
                priority_name(static_cast<Priority>(c)),
                static_cast<unsigned long long>(served[i]),
                static_cast<unsigned long long>(expired[i]),
                static_cast<unsigned long long>(rejected[i]));
  }
  std::printf("   (served/expired/rejected)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string plan_path;
  std::string trace_out;
  int workers = -1;
  int max_microbatch = -1;
  bool check = false;
  bool json = false;
  ReplayOptions replay;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--plan=", 7) == 0) {
      plan_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--max-microbatch=", 17) == 0) {
      max_microbatch = std::atoi(argv[i] + 17);
    } else if (std::strcmp(argv[i], "--no-pace") == 0) {
      replay.pace = false;
    } else if (std::strncmp(argv[i], "--speed=", 8) == 0) {
      replay.speed = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      replay.input_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] != '-' && trace_path.empty()) {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: yoloc_replay TRACE --plan=FILE [--workers=N] "
                   "[--max-microbatch=M] [--no-pace] [--speed=X] [--seed=N] "
                   "[--trace-out=PATH] [--check] [--json]\n");
      return 2;
    }
  }
  if (trace_path.empty() || plan_path.empty()) {
    std::fprintf(stderr, "yoloc_replay: TRACE and --plan are required\n");
    return 2;
  }

  try {
    const WorkloadTrace trace = load_workload_trace(trace_path);
    auto plan = load_plan(plan_path);

    SchedulerOptions options;
    options.workers = workers >= 0 ? workers
                                   : static_cast<int>(trace.workers);
    options.max_microbatch =
        max_microbatch >= 1
            ? max_microbatch
            : (trace.max_microbatch >= 1 ? trace.max_microbatch : 8);
    if (!trace_out.empty()) options.trace_sampling = 1.0;

    std::printf("replaying %zu recorded submissions (%s, speed %.3gx) "
                "workers=%d max_microbatch=%d\n",
                trace.records.size(),
                replay.pace ? "paced" : "as-fast-as-possible", replay.speed,
                options.workers, options.max_microbatch);

    const ReplayResult result = replay_trace(trace, *plan, options, replay);

    print_counts("recorded", trace.served, trace.expired, trace.rejected);
    print_counts("replayed", result.served, result.expired, result.rejected);
    std::printf("outcome counts %s, replay took %.3f s\n",
                result.counts_match ? "MATCH" : "DIFFER", result.seconds);
    if (json) {
      std::printf("%s\n", result.snapshot.to_json().c_str());
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
      out.write(result.trace_json.data(),
                static_cast<std::streamsize>(result.trace_json.size()));
      out.flush();
      if (!out.good()) {
        std::fprintf(stderr, "yoloc_replay: cannot write '%s'\n",
                     trace_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote trace to %s\n", trace_out.c_str());
    }
    return check && !result.counts_match ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "yoloc_replay: %s\n", e.what());
    return 1;
  }
}
