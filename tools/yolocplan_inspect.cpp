// yolocplan_inspect — dump a .yolocplan deployment artifact.
//
//   build/yolocplan_inspect PATH [--no-graph] [--packed]
//
// Prints the artifact header (magic/version), the section table with
// id/offset/size and a stored-vs-computed CRC-32 verdict per section,
// then cold-loads the plan and walks the lowered layer graph: one line
// per layer with kind, name, geometry, engine residency (ROM/SRAM) and
// calibrated activation scale. --packed additionally reports the
// deploy-time packed weight bit-plane footprint (total resident bytes,
// pack time, per-engine entry/byte counts). Exit status: 0 on a clean
// artifact, 1 on any integrity failure (bad magic/version/table/CRC or
// a graph that refuses to load).
//
// The section-table walk parses the container format directly (it is
// small and documented in runtime/plan_serde.hpp) so a corrupt artifact
// still gets its table printed before the load fails.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/crc32.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "runtime/plan_serde.hpp"

namespace {

using namespace yoloc;

const char* section_name(std::uint32_t id) {
  switch (id) {
    case 1:
      return "OPTIONS";
    case 2:
      return "GRAPH";
    case 3:
      return "CANARY";
    default:
      return "unknown";
  }
}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRom:
      return "ROM";
    case EngineKind::kSram:
      return "SRAM";
    case EngineKind::kDefault:
      return "default";
  }
  return "?";
}

std::size_t tensor_bytes(const QuantizedTensor& t) {
  return t.data.size() * sizeof(std::int8_t);
}

/// One line per layer, indented by tree depth.
void dump_layer(Layer& layer, int depth) {
  std::printf("%*s", depth * 2, "");
  switch (layer.kind()) {
    case LayerKind::kSequential: {
      auto& seq = static_cast<Sequential&>(layer);
      std::printf("sequential '%s' (%zu children)\n", seq.name().c_str(),
                  seq.size());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        dump_layer(seq.at(i), depth + 1);
      }
      return;
    }
    case LayerKind::kParallelSum: {
      auto& par = static_cast<ParallelSum&>(layer);
      std::printf("parallel_sum '%s' (%zu branches)\n", par.name().c_str(),
                  par.branch_count());
      for (std::size_t i = 0; i < par.branch_count(); ++i) {
        dump_layer(par.branch(i), depth + 1);
      }
      return;
    }
    case LayerKind::kQuantConv2d: {
      auto& q = static_cast<QuantConv2d&>(layer);
      std::printf(
          "quant_conv2d '%s' %dx%dx%d s%d p%d -> %d ch  engine=%s  "
          "act_scale=%g  weights=%zu B int8\n",
          q.name().c_str(), q.in_channels(), q.kernel(), q.kernel(),
          q.stride(), q.pad(), q.out_channels(), engine_name(q.engine_kind()),
          static_cast<double>(q.act_scale()), tensor_bytes(q.weights()));
      return;
    }
    case LayerKind::kQuantLinear: {
      auto& q = static_cast<QuantLinear&>(layer);
      std::printf(
          "quant_linear '%s' %d -> %d  engine=%s  act_scale=%g  "
          "weights=%zu B int8\n",
          q.name().c_str(), q.in_features(), q.out_features(),
          engine_name(q.engine_kind()), static_cast<double>(q.act_scale()),
          tensor_bytes(q.weights()));
      return;
    }
    case LayerKind::kBatchNorm2d: {
      auto& bn = static_cast<BatchNorm2d&>(layer);
      std::printf("batchnorm2d '%s' (%d channels, unfolded)\n",
                  bn.name().c_str(), bn.channels());
      return;
    }
    case LayerKind::kMaxPool2d:
      std::printf("maxpool2d (window %d)\n",
                  static_cast<MaxPool2d&>(layer).window());
      return;
    case LayerKind::kLeakyReLU:
      std::printf("leaky_relu (slope %g)\n",
                  static_cast<double>(
                      static_cast<LeakyReLU&>(layer).negative_slope()));
      return;
    default:
      std::printf("%s\n", layer.name().c_str());
      return;
  }
}

/// Parse and print the container header + section table; returns false
/// on any integrity failure.
bool dump_section_table(const std::vector<std::uint8_t>& bytes) {
  constexpr char kMagic[8] = {'Y', 'O', 'L', 'O', 'C', 'P', 'L', 'N'};
  if (bytes.size() < sizeof(kMagic) + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    std::printf("not a .yolocplan artifact (bad magic)\n");
    return false;
  }
  ByteReader r(bytes.data(), bytes.size());
  std::uint8_t magic_skip[sizeof(kMagic)];
  r.bytes(magic_skip, sizeof(kMagic));
  const std::uint32_t version = r.u32();
  const std::uint32_t nsec = r.u32();
  std::printf("magic   YOLOCPLN\nversion %u%s\nsections %u\n", version,
              version == kPlanFormatVersion ? "" : "  (UNSUPPORTED)", nsec);
  if (nsec == 0 || nsec > 64) {
    std::printf("bad section count\n");
    return false;
  }
  std::printf("  %-4s %-8s %10s %12s %10s %10s %s\n", "id", "name", "offset",
              "size", "crc32", "computed", "verdict");
  bool ok = version == kPlanFormatVersion;
  for (std::uint32_t i = 0; i < nsec; ++i) {
    if (r.remaining() < 24) {
      std::printf("  truncated section table\n");
      return false;
    }
    const std::uint32_t id = r.u32();
    const std::uint64_t offset = r.u64();
    const std::uint64_t size = r.u64();
    const std::uint32_t stored_crc = r.u32();
    const bool in_bounds =
        offset <= bytes.size() && size <= bytes.size() - offset;
    const std::uint32_t computed_crc =
        in_bounds ? crc32(bytes.data() + offset, size) : 0;
    const bool section_ok = in_bounds && computed_crc == stored_crc;
    ok = ok && section_ok;
    std::printf("  %-4u %-8s %10llu %12llu %#10x %#10x %s\n", id,
                section_name(id), static_cast<unsigned long long>(offset),
                static_cast<unsigned long long>(size), stored_crc,
                computed_crc,
                !in_bounds ? "OUT-OF-BOUNDS"
                           : (section_ok ? "OK" : "CRC MISMATCH"));
  }
  return ok;
}

/// Whole-file read with explicit failures (a directory, a pipe, or a
/// vanishing file must exit 1 with a message, never crash).
std::vector<std::uint8_t> read_file(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw std::runtime_error("'" + path + "' is not a readable file");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) throw std::runtime_error("cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  if (size < 0) throw std::runtime_error("cannot stat '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (in.gcount() != size) {
    throw std::runtime_error("short read on '" + path + "'");
  }
  return bytes;
}

int run(const std::string& path, bool dump_graph, bool dump_packed) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::printf("%s  (%llu bytes)\n", path.c_str(),
              static_cast<unsigned long long>(bytes.size()));
  bool ok = dump_section_table(bytes);

  if ((dump_graph || dump_packed) && ok) {
    try {
      auto plan = deserialize_plan(bytes.data(), bytes.size());
      const DeploymentOptions& o = plan->options();
      std::printf(
          "\noptions: mode=%s weight_bits=%d act_bits=%d "
          "quantized_layers=%d rom=%dx%d sram=%dx%d\n",
          o.mode == MacroMvmEngine::Mode::kAnalog ? "analog" : "exact-cost",
          o.weight_bits, o.act_bits, plan->quantized_layer_count(),
          o.rom_macro.geometry.rows, o.rom_macro.geometry.cols,
          o.sram_macro.geometry.rows, o.sram_macro.geometry.cols);
      if (dump_packed) {
        // deserialize_plan prepacks eagerly, so these caches are the
        // deploy-time resident footprint, not a lazily filled subset.
        std::printf(
            "\npacked weight bit-planes:\n"
            "  total    %llu B resident, packed in %.3f ms\n"
            "  rom      %zu entries, %llu B\n"
            "  sram     %zu entries, %llu B\n",
            static_cast<unsigned long long>(plan->packed_weight_bytes()),
            plan->pack_ms(), plan->rom_packed().entries(),
            static_cast<unsigned long long>(plan->rom_packed().packed_bytes()),
            plan->sram_packed().entries(),
            static_cast<unsigned long long>(
                plan->sram_packed().packed_bytes()));
      }
      if (dump_graph) {
        std::printf("\nlowered layer graph:\n");
        dump_layer(plan->model(), 1);
      }
    } catch (const std::exception& e) {
      std::printf("\nplan load FAILED: %s\n", e.what());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool dump_graph = true;
  bool dump_packed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-graph") == 0) {
      dump_graph = false;
    } else if (std::strcmp(argv[i], "--packed") == 0) {
      dump_packed = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: yolocplan_inspect PATH [--no-graph] [--packed]\n");
    return 2;
  }
  try {
    return run(path, dump_graph, dump_packed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "yolocplan_inspect: %s\n", e.what());
    return 1;
  }
}
