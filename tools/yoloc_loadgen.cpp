// HTTP load generator for yoloc_serve: closed-loop (fixed concurrency,
// back-to-back) and open-loop (Poisson arrivals at a target rate —
// latency measured from the SCHEDULED arrival, so server-side queueing
// is charged to the server, not hidden by a slow client).
//
//   build/yoloc_loadgen --port-file /tmp/port --mode closed --concurrency 4
//   build/yoloc_loadgen --port 8080 --mode open --rate 200 --duration-s 10
//
// Emits one JSON summary line on stdout (grep '^{'), the shape
// refresh_bench.sh snapshots into bench/BENCH_http_serving.json:
// requests / ok / err_429 / err_503 / err_other / error_rate /
// images_per_s / p50_ms / p99_ms.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/base64.hpp"
#include "serve/http_client.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  std::string mode = "closed";  // closed | open
  int concurrency = 4;          // closed-loop threads / open-loop senders
  double rate = 100.0;          // open-loop arrivals per second
  double duration_s = 5.0;
  int max_requests = 0;  // 0 = duration-bound
  int n = 1, c = 3, h = 16, w = 16;
  std::string priority_mix = "1,1,0";  // interactive:batch:best_effort
  double deadline_ms = 0.0;            // 0 = none
  std::uint64_t seed = 42;
  int warmup = 8;
  /// Max retries per request on 429/503/transport errors (0 = off).
  int retries = 0;
};

struct Counters {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> err_429{0};
  std::atomic<std::uint64_t> err_503{0};
  std::atomic<std::uint64_t> err_other{0};
  std::atomic<std::uint64_t> err_transport{0};
  std::atomic<std::uint64_t> retries{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;  // successful requests only
};

void record(Counters& counters, int status, double latency_ms) {
  if (status == 200) {
    counters.ok.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(counters.latency_mutex);
    counters.latencies_ms.push_back(latency_ms);
  } else if (status == 429) {
    counters.err_429.fetch_add(1, std::memory_order_relaxed);
  } else if (status == 503) {
    counters.err_503.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters.err_other.fetch_add(1, std::memory_order_relaxed);
  }
}

/// One /infer request body per priority class, built once (the tensor
/// payload is identical; only the scheduling hints differ).
std::vector<std::string> build_bodies(const Config& config,
                                      const std::vector<std::string>& prios) {
  std::mt19937_64 rng(config.seed);
  const std::size_t elements = static_cast<std::size_t>(config.n) *
                               static_cast<std::size_t>(config.c) *
                               static_cast<std::size_t>(config.h) *
                               static_cast<std::size_t>(config.w);
  std::vector<float> image(elements);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (float& v : image) v = dist(rng);
  const std::string data_b64 =
      base64_encode(image.data(), image.size() * sizeof(float));

  std::vector<std::string> bodies;
  bodies.reserve(prios.size());
  for (const std::string& priority : prios) {
    std::string body = "{\"shape\":[" + std::to_string(config.n) + "," +
                       std::to_string(config.c) + "," +
                       std::to_string(config.h) + "," +
                       std::to_string(config.w) + "],\"priority\":\"" +
                       priority + "\"";
    if (config.deadline_ms > 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"deadline_ms\":%.3f",
                    config.deadline_ms);
      body += buf;
    }
    body += ",\"data_b64\":\"" + data_b64 + "\"}";
    bodies.push_back(std::move(body));
  }
  return bodies;
}

/// "4,2,1" -> per-request priority index stream (deterministic).
std::vector<int> mix_weights(const std::string& text) {
  std::vector<int> weights;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    weights.push_back(std::atoi(
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start)
            .c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  while (weights.size() < 3) weights.push_back(0);
  return weights;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: yoloc_loadgen (--port N | --port-file PATH) [options]\n"
      "  --host ADDR          server address (default 127.0.0.1)\n"
      "  --mode closed|open   closed loop (default) or open loop\n"
      "  --concurrency N      client threads (default 4)\n"
      "  --rate R             open-loop arrivals/s (default 100)\n"
      "  --duration-s S       run length (default 5)\n"
      "  --requests N         stop after N requests (0 = duration-bound)\n"
      "  --shape N,C,H,W      request tensor shape (default 1,3,16,16)\n"
      "  --priority-mix A,B,C interactive:batch:best_effort weights\n"
      "  --deadline-ms X      per-request deadline (0 = none)\n"
      "  --warmup N           untimed warmup requests (default 8)\n"
      "  --seed S             payload + arrival rng seed\n"
      "  --retry N            retry 429/503/transport errors up to N times\n"
      "                       (exponential backoff + jitter, honors\n"
      "                       Retry-After, gives up at the run/request\n"
      "                       deadline)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[++i] : nullptr;
    if (value == nullptr) return usage();
    if (arg == "--host") {
      config.host = value;
    } else if (arg == "--port") {
      config.port = std::atoi(value);
    } else if (arg == "--port-file") {
      config.port_file = value;
    } else if (arg == "--mode") {
      config.mode = value;
    } else if (arg == "--concurrency") {
      config.concurrency = std::atoi(value);
    } else if (arg == "--rate") {
      config.rate = std::atof(value);
    } else if (arg == "--duration-s") {
      config.duration_s = std::atof(value);
    } else if (arg == "--requests") {
      config.max_requests = std::atoi(value);
    } else if (arg == "--shape") {
      if (std::sscanf(value, "%d,%d,%d,%d", &config.n, &config.c, &config.h,
                      &config.w) != 4) {
        return usage();
      }
    } else if (arg == "--priority-mix") {
      config.priority_mix = value;
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = std::atof(value);
    } else if (arg == "--warmup") {
      config.warmup = std::atoi(value);
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--retry") {
      config.retries = std::atoi(value);
    } else {
      return usage();
    }
  }
  if (!config.port_file.empty()) {
    // The server writes the file atomically after binding; poll briefly
    // so "start server & start loadgen" scripts don't need a sleep.
    for (int attempt = 0; attempt < 100 && config.port == 0; ++attempt) {
      std::ifstream in(config.port_file);
      if (in >> config.port) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (config.port <= 0 || (config.mode != "closed" && config.mode != "open") ||
      config.concurrency < 1) {
    return usage();
  }

  const std::vector<std::string> kPriorities = {"interactive", "batch",
                                                "best_effort"};
  const std::vector<std::string> bodies = build_bodies(config, kPriorities);
  const std::vector<int> weights = mix_weights(config.priority_mix);
  const int weight_sum = weights[0] + weights[1] + weights[2];
  if (weight_sum <= 0) return usage();

  // Deterministic per-request priority stream shared by both modes.
  auto priority_of = [&](std::uint64_t request_index) {
    std::mt19937_64 rng(config.seed * 1315423911u + request_index);
    const int pick =
        static_cast<int>(rng() % static_cast<std::uint64_t>(weight_sum));
    if (pick < weights[0]) return 0;
    if (pick < weights[0] + weights[1]) return 1;
    return 2;
  };

  try {
    // Warmup: settle the scheduler's per-image service estimate (and
    // fault in lazy buffers) outside the measured window.
    {
      HttpClient warm(config.host, config.port);
      for (int i = 0; i < config.warmup; ++i) {
        (void)warm.post("/infer", bodies[1]);
      }
    }

    Counters counters;
    std::atomic<std::uint64_t> issued{0};
    const auto start = Clock::now();
    const auto stop_at =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(config.duration_s));

    // POST with bounded retries on retriable failures (429, 503,
    // transport). Exponential backoff with multiplicative jitter,
    // raised to the server's Retry-After hint when present; gives up —
    // returning the last failure — once the next attempt could not land
    // before the run deadline (or the request's own deadline budget,
    // measured from the first attempt). The final transport failure is
    // rethrown so callers count it as before.
    auto post_with_retry = [&](HttpClient& client, const std::string& body,
                               std::uint64_t rng_salt) -> HttpResponse {
      const auto first_attempt = Clock::now();
      std::mt19937_64 rng(config.seed ^ (rng_salt * 0x9e3779b97f4a7c15ull));
      auto backoff = std::chrono::milliseconds(50);
      for (int attempt = 0;; ++attempt) {
        bool transport_error = false;
        HttpResponse resp;
        try {
          resp = client.post("/infer", body);
        } catch (const std::exception&) {
          transport_error = true;
        }
        const bool retriable =
            transport_error || resp.status == 429 || resp.status == 503;
        if (!retriable || attempt >= config.retries) {
          if (transport_error) throw std::runtime_error("transport error");
          return resp;
        }
        auto wait = backoff;
        if (!transport_error) {
          const auto hint = resp.headers.find("retry-after");
          if (hint != resp.headers.end()) {
            wait = std::max(
                wait, std::chrono::milliseconds(
                          std::atoll(hint->second.c_str()) * 1000));
          }
        }
        // Jitter in [0.75, 1.25): decorrelates clients that were all
        // refused by the same capacity dip.
        wait = std::chrono::milliseconds(static_cast<long long>(
            static_cast<double>(wait.count()) *
            (0.75 + 0.5 * static_cast<double>(rng() % 1024) / 1024.0)));
        const auto resume = Clock::now() + wait;
        if (resume >= stop_at ||
            (config.deadline_ms > 0.0 &&
             std::chrono::duration<double, std::milli>(resume - first_attempt)
                     .count() > config.deadline_ms)) {
          if (transport_error) throw std::runtime_error("transport error");
          return resp;  // no budget left for another attempt
        }
        counters.retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(wait);
        backoff *= 2;
      }
    };
    const std::uint64_t request_cap =
        config.max_requests > 0
            ? static_cast<std::uint64_t>(config.max_requests)
            : UINT64_MAX;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.concurrency));

    if (config.mode == "closed") {
      for (int t = 0; t < config.concurrency; ++t) {
        threads.emplace_back([&, t] {
          HttpClient client(config.host, config.port);
          (void)t;
          for (;;) {
            const std::uint64_t id =
                issued.fetch_add(1, std::memory_order_relaxed);
            if (id >= request_cap || Clock::now() >= stop_at) return;
            const auto begin = Clock::now();
            try {
              const HttpResponse resp = post_with_retry(
                  client, bodies[static_cast<std::size_t>(priority_of(id))],
                  id);
              record(counters, resp.status,
                     std::chrono::duration<double, std::milli>(Clock::now() -
                                                               begin)
                         .count());
            } catch (const std::exception&) {
              counters.err_transport.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    } else {
      // Open loop: pre-draw the Poisson arrival schedule, stripe it over
      // the sender threads; each sender sleeps to its own arrivals.
      std::mt19937_64 arrival_rng(config.seed ^ 0x9e3779b97f4a7c15ull);
      std::exponential_distribution<double> gap(config.rate);
      std::vector<double> arrivals_s;
      double t = 0.0;
      while (t < config.duration_s &&
             arrivals_s.size() < request_cap) {
        t += gap(arrival_rng);
        if (t >= config.duration_s) break;
        arrivals_s.push_back(t);
      }
      for (int worker = 0; worker < config.concurrency; ++worker) {
        threads.emplace_back([&, worker] {
          HttpClient client(config.host, config.port);
          for (std::size_t i = static_cast<std::size_t>(worker);
               i < arrivals_s.size();
               i += static_cast<std::size_t>(config.concurrency)) {
            const auto scheduled =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(arrivals_s[i]));
            std::this_thread::sleep_until(scheduled);
            issued.fetch_add(1, std::memory_order_relaxed);
            try {
              const HttpResponse resp = post_with_retry(
                  client, bodies[static_cast<std::size_t>(priority_of(i))],
                  i);
              // Latency from the scheduled arrival: client-side send
              // delay and server queueing both count.
              record(counters, resp.status,
                     std::chrono::duration<double, std::milli>(Clock::now() -
                                                               scheduled)
                         .count());
            } catch (const std::exception&) {
              counters.err_transport.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    for (std::thread& thread : threads) thread.join();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> latencies;
    {
      std::lock_guard lock(counters.latency_mutex);
      latencies = counters.latencies_ms;
    }
    std::sort(latencies.begin(), latencies.end());
    const std::uint64_t ok = counters.ok.load();
    const std::uint64_t e429 = counters.err_429.load();
    const std::uint64_t e503 = counters.err_503.load();
    const std::uint64_t eother = counters.err_other.load();
    const std::uint64_t etrans = counters.err_transport.load();
    const std::uint64_t total = ok + e429 + e503 + eother + etrans;
    const double images_per_s =
        elapsed_s > 0 ? static_cast<double>(ok * static_cast<std::uint64_t>(
                                                     config.n)) /
                            elapsed_s
                      : 0.0;

    std::printf(
        "{\"bench\":\"http_serving\",\"mode\":\"%s\",\"concurrency\":%d,"
        "\"rate\":%.1f,\"priority_mix\":\"%s\",\"requests\":%llu,"
        "\"ok\":%llu,\"err_429\":%llu,\"err_503\":%llu,\"err_other\":%llu,"
        "\"err_transport\":%llu,\"retries\":%llu,\"error_rate\":%.4f,"
        "\"images_per_s\":%.1f,"
        "\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"elapsed_s\":%.2f}\n",
        config.mode.c_str(), config.concurrency,
        config.mode == "open" ? config.rate : 0.0,
        config.priority_mix.c_str(), static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(e429),
        static_cast<unsigned long long>(e503),
        static_cast<unsigned long long>(eother),
        static_cast<unsigned long long>(etrans),
        static_cast<unsigned long long>(counters.retries.load()),
        total > 0 ? static_cast<double>(total - ok) /
                        static_cast<double>(total)
                  : 0.0,
        images_per_s, percentile(latencies, 0.50),
        percentile(latencies, 0.99), elapsed_s);
    return ok > 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "yoloc_loadgen: %s\n", e.what());
    return 1;
  }
}
