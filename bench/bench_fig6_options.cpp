// Figure 6: the four flexibility options compared on one transfer task,
// plus the transferability-decay experiment behind Option II
// (Fig. 6(b): freezing deeper and deeper prefixes of the backbone in ROM
// loses accuracy, because transferability decays with depth).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/trainer.hpp"
#include "rebranch/rebranch.hpp"
#include "rebranch/transfer.hpp"

namespace {

using namespace yoloc;

TransferSetup bench_setup() {
  TransferSetup setup;
  setup.backbone = BackboneKind::kVgg8;
  setup.image_size = 16;
  setup.base_width = 12;
  setup.pretrain_samples_per_class = 30;
  setup.target_train_samples_per_class = 25;
  setup.target_test_samples_per_class = 20;
  setup.pretrain_cfg.epochs = 10;
  setup.finetune_cfg.epochs = 8;
  return setup;
}

void run_option_comparison() {
  std::printf("=== Figure 6: flexibility options on caltech-like target "
              "===\n");
  TransferHarness harness(bench_setup());
  const DatasetSpec target = caltech_like_spec(16);
  TextTable t({"Option", "Accuracy [%]", "ROM bits", "SRAM bits"});
  for (auto opt : {TransferOption::kRosl, TransferOption::kAllRom,
                   TransferOption::kDeepConv, TransferOption::kSpwd,
                   TransferOption::kReBranch, TransferOption::kAllSram}) {
    const TransferOutcome o = harness.run(opt, target);
    t.add_row({option_name(opt), format_fixed(100.0 * o.accuracy, 1),
               format_si(o.split.rom_bits, 1), format_si(o.split.sram_bits, 1)});
  }
  t.print();
  std::printf("\n");
}

/// Fig. 6(b): freeze the first k backbone convs (ROM), train the rest.
void run_transferability_decay() {
  std::printf("=== Figure 6(b): transferability decay with freeze depth "
              "===\n");
  const TransferSetup setup = bench_setup();
  Rng data_rng(setup.data_seed);
  const DatasetSpec source = source_suite_spec(16);
  const LabeledDataset src_train = generate_classification(
      source, setup.pretrain_samples_per_class, data_rng);
  const DatasetSpec target = caltech_like_spec(16);
  Rng target_rng(setup.data_seed ^ 0xBEEF);
  const LabeledDataset tgt_train = generate_classification(
      target, setup.target_train_samples_per_class, target_rng);
  const LabeledDataset tgt_test = generate_classification(
      target, setup.target_test_samples_per_class, target_rng);

  ZooConfig zoo;
  zoo.image_size = setup.image_size;
  zoo.base_width = setup.base_width;
  zoo.num_classes = source.num_classes;
  zoo.seed = 99;
  LayerPtr pretrained = build_vgg8_lite(zoo, plain_conv_unit);
  (void)train_classifier(*pretrained, src_train.images, src_train.labels,
                         setup.pretrain_cfg);
  const ParamSnapshot snapshot = snapshot_parameters(*pretrained);

  // The six backbone convs in order (see nn/zoo.cpp naming).
  const char* conv_names[] = {
      "backbone.stage0.conv1", "backbone.stage0.conv2",
      "backbone.stage1.conv1", "backbone.stage1.conv2",
      "backbone.stage2.conv1", "backbone.stage2.conv2"};

  TextTable t({"Frozen prefix [convs]", "Accuracy [%]"});
  for (int freeze_depth = 0; freeze_depth <= 6; ++freeze_depth) {
    ZooConfig tz = zoo;
    tz.num_classes = target.num_classes;
    LayerPtr net = build_vgg8_lite(tz, plain_conv_unit);
    restore_parameters(*net, snapshot);
    for (Parameter* p : net->parameters()) {
      bool frozen = false;
      for (int c = 0; c < freeze_depth; ++c) {
        if (p->name.find(conv_names[c]) != std::string::npos) frozen = true;
      }
      p->trainable = !frozen;
      p->rom_resident = frozen;
    }
    (void)train_classifier(*net, tgt_train.images, tgt_train.labels,
                           setup.finetune_cfg);
    const double acc =
        evaluate_classifier(*net, tgt_test.images, tgt_test.labels);
    t.add_row({std::to_string(freeze_depth), format_fixed(100.0 * acc, 1)});
  }
  t.print();
  std::printf("(0 = all layers trainable; 6 = classifier-only, Option II "
              "extreme)\n\n");
}

void BM_PolicyApplication(benchmark::State& state) {
  ZooConfig zoo;
  zoo.image_size = 16;
  zoo.base_width = 12;
  LayerPtr net = build_vgg8_lite(zoo, make_rebranch_factory({4, 4}));
  for (auto _ : state) {
    apply_transfer_policy(*net, TransferOption::kReBranch);
    benchmark::DoNotOptimize(net.get());
  }
}
BENCHMARK(BM_PolicyApplication);

}  // namespace

int main(int argc, char** argv) {
  run_option_comparison();
  run_transferability_decay();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
