// System-level sensitivity ablations:
//  * DRAM energy/bit: how robust is the YOLoC-vs-SRAM-CiM improvement to
//    the dominant substitution constant (CACTI-IO-scale default 20 pJ/b).
//  * Cache size: drives the activation-tiling weight re-fetch factor.
//  * Mapping strategy: the paper's packed layer placement ("storing the
//    weights of different layers to the same sub-array") vs dedicated
//    subarrays — ADC/column utilization.
//  * Boot amortization: inferences per power cycle vs YOLoC's amortized
//    DRAM share.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/system_sim.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mapping/weight_mapper.hpp"

namespace {

using namespace yoloc;

double yolo_improvement(const SystemConfig& cfg) {
  const SystemSimulator sim(cfg);
  const double anchor =
      sim.sram_chip_area_for_bits(vgg8_model().weight_bits(8));
  const IsoAreaComparison cmp =
      compare_iso_area(sim, yolo_darknet19_model(), 4, 4, 1, anchor);
  return cmp.yoloc.tops_per_watt() / cmp.sram_single.tops_per_watt();
}

void run_dram_sweep() {
  std::printf("=== Ablation: DRAM energy/bit vs YOLO improvement ===\n");
  TextTable t({"DRAM [pJ/b]", "YOLoC improvement"});
  for (double pj : {5.0, 10.0, 20.0, 40.0}) {
    SystemConfig cfg;
    cfg.dram.energy_pj_per_bit = pj;
    t.add_row({format_fixed(pj, 0),
               format_fixed(yolo_improvement(cfg), 1) + "x"});
  }
  t.print();
  std::printf("(the win persists even at optimistic DRAM energy)\n\n");
}

void run_cache_sweep() {
  std::printf("=== Ablation: cache size vs YOLO improvement ===\n");
  TextTable t({"Cache [KB]", "YOLoC improvement"});
  for (double kb : {64.0, 128.0, 256.0, 512.0}) {
    SystemConfig cfg;
    cfg.cache.capacity_kb = kb;
    t.add_row({format_fixed(kb, 0),
               format_fixed(yolo_improvement(cfg), 1) + "x"});
  }
  t.print();
  std::printf("(bigger caches reduce weight re-fetch in the baseline)\n\n");
}

void run_mapping_comparison() {
  std::printf("=== Ablation: packed vs dedicated weight mapping (YOLO) "
              "===\n");
  const MacroGeometry geom = default_rom_macro().geometry;
  const WeightMapper mapper(geom);
  std::vector<LayerMvm> layers;
  int id = 0;
  for (const auto& layer : yolo_darknet19_model().layers) {
    if (layer.weight_count() <= 0) continue;
    LayerMvm lm;
    lm.layer_id = id++;
    lm.name = layer.name;
    lm.shape = layer.kind == NetLayerKind::kFc
                   ? fc_to_mvm(layer.in_ch, layer.out_ch)
                   : conv_to_mvm(layer.in_ch, layer.out_ch, layer.kernel,
                                 layer.out_h(), layer.out_w());
    layers.push_back(lm);
  }
  TextTable t({"Strategy", "Subarrays", "Utilization [%]"});
  for (auto strategy :
       {MappingStrategy::kDedicated, MappingStrategy::kPacked}) {
    const MappingPlan plan = mapper.map(layers, strategy);
    t.add_row({strategy == MappingStrategy::kPacked ? "packed (paper)"
                                                    : "dedicated",
               std::to_string(plan.subarrays_used),
               format_fixed(100.0 * plan.utilization, 1)});
  }
  t.print();
  std::printf("\n");
}

void run_boot_amortization() {
  std::printf("=== Ablation: boot amortization vs YOLoC DRAM share ===\n");
  TextTable t({"Inferences/boot", "YOLoC DRAM share [%]"});
  for (double n : {10.0, 100.0, 1e3, 1e4}) {
    SystemConfig cfg;
    cfg.inferences_per_boot = n;
    const SystemSimulator sim(cfg);
    NetworkModel net = yolo_darknet19_model();
    assign_backbone_to_rom(net, 1);
    const SystemReport r = sim.simulate_yoloc(apply_rebranch(net, 4, 4));
    t.add_row({format_si(n, 0),
               format_fixed(100.0 * r.energy.dram_pj / r.energy.total_pj(),
                            2)});
  }
  t.print();
  std::printf("(SRAM-CiM weight load at power-on amortizes away quickly)\n\n");
}

void BM_WeightMappingYolo(benchmark::State& state) {
  const WeightMapper mapper(default_rom_macro().geometry);
  std::vector<LayerMvm> layers;
  int id = 0;
  for (const auto& layer : yolo_darknet19_model().layers) {
    if (layer.weight_count() <= 0) continue;
    layers.push_back({id++, layer.name,
                      conv_to_mvm(layer.in_ch, layer.out_ch,
                                  std::max(1, layer.kernel), layer.out_h(),
                                  layer.out_w())});
  }
  for (auto _ : state) {
    const MappingPlan plan = mapper.map(layers, MappingStrategy::kPacked);
    benchmark::DoNotOptimize(plan.subarrays_used);
  }
}
BENCHMARK(BM_WeightMappingYolo)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_dram_sweep();
  run_cache_sweep();
  run_mapping_comparison();
  run_boot_amortization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
