// Figure 12: detection mAP and chip area across deployment options.
//  * Bar part: mAP on the VOC-like target + total chip area (all weights
//    on chip) for SRAM-CiM / Tiny-YOLO / Deep-Conv / YOLoC. Paper: YOLoC
//    matches the SRAM-CiM baseline's mAP (81.4 vs 81.2) at 9.7x less
//    area; Tiny-YOLO saves area (2.4x) but drops >10 mAP; Deep-Conv
//    drops ~3 mAP.
//  * Table part: COCO-like -> {pedestrian, traffic, VOC}-like transfer
//    mAP for the SRAM-CiM baseline, Option II (prediction-only) and the
//    proposed ReBranch.
//
// mAP comes from actually training the -lite detectors on synthetic
// scenes; chip area comes from the full-size YOLO / Tiny-YOLO layer
// tables through the system area model (see DESIGN.md substitutions).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/system_sim.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "rebranch/detection_transfer.hpp"

namespace {

using namespace yoloc;

DetectionTransferSetup bench_setup() {
  DetectionTransferSetup setup;
  setup.image_size = 48;
  setup.base_width = 8;
  setup.pretrain_scenes = 300;
  setup.target_train_scenes = 200;
  setup.target_test_scenes = 120;
  setup.pretrain_cfg.epochs = 12;
  setup.finetune_cfg.epochs = 7;
  return setup;
}

/// Full-size chip area for each option: all weights resident.
double option_chip_area_mm2(DetectorOption opt, const SystemSimulator& sim) {
  switch (opt) {
    case DetectorOption::kSramCim:  // all-SRAM chip holding full YOLO
      return sim.sram_chip_area_for_bits(
          yolo_darknet19_model().weight_bits(8));
    case DetectorOption::kTinyYolo:  // all-SRAM chip holding Tiny-YOLO
      return sim.sram_chip_area_for_bits(tiny_yolo_model().weight_bits(8));
    case DetectorOption::kDeepConv: {
      // Backbone in ROM except the deepest conv + head in SRAM.
      NetworkModel net = yolo_darknet19_model();
      assign_backbone_to_rom(net, /*sram_tail_layers=*/2);
      return sim.simulate_yoloc(net).area.total_mm2;
    }
    case DetectorOption::kYoloc: {
      NetworkModel net = yolo_darknet19_model();
      assign_backbone_to_rom(net, 1);
      return sim.simulate_yoloc(apply_rebranch(net, 4, 4)).area.total_mm2;
    }
  }
  return 0.0;
}

void run_bar_chart(DetectionTransferHarness& harness) {
  std::printf(
      "=== Figure 12: mAP (VOC-like) + chip area (all weights fit) ===\n");
  const SystemSimulator sim{SystemConfig{}};
  const DetectionSpec voc = voc_like_spec(48);

  const double sram_area =
      option_chip_area_mm2(DetectorOption::kSramCim, sim);
  TextTable t({"Method", "mAP [%]", "Chip area [mm^2]", "Area saving"});
  for (auto opt : {DetectorOption::kSramCim, DetectorOption::kTinyYolo,
                   DetectorOption::kDeepConv, DetectorOption::kYoloc}) {
    const DetectionOutcome o = harness.run(opt, voc);
    const double area = option_chip_area_mm2(opt, sim);
    t.add_row({detector_option_name(opt), format_fixed(100.0 * o.map, 1),
               format_fixed(area, 1),
               format_fixed(sram_area / area, 1) + "x"});
  }
  t.print();
  std::printf("(source COCO-like mAP of the pretrained detector: %.1f%%)\n\n",
              100.0 * harness.source_map());
}

void run_transfer_table(DetectionTransferHarness& harness) {
  std::printf(
      "=== Figure 12 table: COCO-like -> target transfer mAP [%%] ===\n");
  const DetectionSpec targets[] = {pedestrian_like_spec(48),
                                   traffic_like_spec(48), voc_like_spec(48)};
  TextTable t({"Method", "-> pedestrian", "-> traffic", "-> VOC"});
  for (auto opt : {DetectorOption::kSramCim, DetectorOption::kPredOnly,
                   DetectorOption::kYoloc}) {
    std::vector<double> row;
    for (const auto& target : targets) {
      row.push_back(100.0 * harness.run(opt, target).map);
    }
    t.add_row(detector_option_name(opt), row, 1);
  }
  t.print();
  std::printf("\n");
}

void BM_DetectorInference(benchmark::State& state) {
  ZooConfig zoo;
  zoo.image_size = 48;
  zoo.base_width = 8;
  zoo.num_classes = kNumShapeClasses;
  LayerPtr det = build_detector_lite(zoo, plain_conv_unit);
  Rng rng(5);
  Tensor batch = Tensor::rand_uniform({8, 3, 48, 48}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = det->forward(batch, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DetectorInference)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  DetectionTransferHarness harness(bench_setup());
  run_bar_chart(harness);
  run_transfer_table(harness);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
