// Table I: ROM-CiM macro specification summary, regenerated from the
// macro model (density & throughput analytic; MAC energy efficiency
// measured through the functional analog path). The SRAM-CiM baseline
// macro is summarized alongside for the density/efficiency comparison.
//
// Paper values (28nm): 1.2 Mb, 0.24 mm^2, 5 Mb/mm^2 (25.6x), 0.014 um^2
// cell, 8b x 8b, 8.9 ns, 256 ops, 28.8 GOPS, 119.4 GOPS/mm^2,
// 11.5 TOPS/W, 0 standby.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/units.hpp"
#include "macro/macro_spec.hpp"

namespace {

using namespace yoloc;

void print_tables() {
  Rng rng(2022);
  const CimMacro rom(default_rom_macro());
  const CimMacro sram(default_sram_macro());

  std::printf("=== Table I: ROM-CiM macro specification summary ===\n");
  macro_spec_table(summarize_macro(rom, rng, /*samples=*/64)).print();

  std::printf("\n=== SRAM-CiM baseline macro (ISSCC'21-class) ===\n");
  // Reference density: the same 6T SRAM-CiM counterpart as the ROM row,
  // so the ratio column reads as "vs 6T SRAM-CiM".
  macro_spec_table(summarize_macro(sram, rng, /*samples=*/64)).print();

  const double rom_density = default_rom_macro().density_mb_per_mm2();
  const double sram_density = default_sram_macro().density_mb_per_mm2();
  std::printf("\nMacro density ratio ROM-CiM : SRAM-CiM = %.1fx "
              "(paper: ~19x macro, 25.6x vs 6T counterpart)\n\n",
              rom_density / sram_density);
}

/// Microbenchmark: one full-width analog MVM through the ROM macro.
void BM_RomMacroMvm(benchmark::State& state) {
  const CimMacro macro(default_rom_macro());
  Rng rng(1);
  const int k = macro.config().geometry.rows;
  const int m = macro.config().geometry.weights_per_row();
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  MacroRunStats stats;
  for (auto _ : state) {
    macro.mvm(w.data(), m, k, x.data(), y.data(), rng, stats);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["modeled_TOPS/W"] =
      tops_per_watt(2.0 * static_cast<double>(stats.macs), stats.energy_pj());
  state.counters["sim_MACs/s"] = benchmark::Counter(
      static_cast<double>(m) * k * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RomMacroMvm);

/// Microbenchmark: the exact-cost path (accuracy studies disabled).
void BM_RomMacroMvmExactCost(benchmark::State& state) {
  const CimMacro macro(default_rom_macro());
  Rng rng(2);
  const int k = macro.config().geometry.rows;
  const int m = macro.config().geometry.weights_per_row();
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k, 3);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k), 7);
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  MacroRunStats stats;
  for (auto _ : state) {
    macro.mvm_exact_cost(w.data(), m, k, x.data(), y.data(), stats);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_RomMacroMvmExactCost);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
