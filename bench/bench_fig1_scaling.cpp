// Figure 1(a): CiM-capable SRAM density and normalized tape-out cost
// across process nodes, with the 28 nm ROM-CiM point of this work
// overlaid. The figure's argument: chasing on-chip weight capacity by
// technology scaling is exponentially expensive, while ROM-CiM reaches
// beyond-7nm SRAM-CiM density at 28 nm cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/tech_scaling.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace yoloc;

void print_figure() {
  std::printf("=== Figure 1(a): density vs tape-out cost across nodes ===\n");
  TextTable t({"Node [nm]", "6T cell [um^2]", "SRAM-CiM density [Mb/mm^2]",
               "Tape-out cost [norm]"});
  for (const auto& node : tech_scaling_table()) {
    t.add_row({std::to_string(node.node_nm), format_fixed(node.sram_cell_um2, 3),
               format_fixed(node.sram_density_mb_per_mm2, 3),
               format_fixed(node.tapeout_cost_norm, 1)});
  }
  t.print();
  std::printf("\nROM-CiM (this work, 28nm): %.2f Mb/mm^2 at 28nm tape-out "
              "cost (8.5x of 130nm)\n",
              rom_cim_density_at_28nm());
  std::printf("=> denser than the SRAM-CiM series at every node in the "
              "table, at a fraction of the mask cost.\n\n");
}

void BM_TechTableGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto table = tech_scaling_table();
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_TechTableGeneration);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
