// Figure 10: ReBranch generalization analysis.
//  (a) Source -> {cifar10, mnist, fashion, caltech}-like transfer
//      accuracy for All-SRAM vs All-ROM vs ReBranch (paper: ReBranch
//      within ~1% of All-SRAM, All-ROM clearly behind on shifted
//      targets; paper row: 90.9/99.2/93.9/66.8 vs 87.3/99.2/92.2/56.1
//      vs 90.2/99.4/93.0/67.5).
//  (b) Accuracy + normalized memory area for All-SRAM / All-ROM /
//      DeepConv / ReBranch on VGG-8 and ResNet-18 (paper: ReBranch ~10x
//      area saving at <0.4% accuracy loss).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "common/units.hpp"
#include "rebranch/transfer.hpp"

namespace {

using namespace yoloc;

TransferSetup bench_setup(BackboneKind backbone) {
  TransferSetup setup;
  setup.backbone = backbone;
  setup.image_size = 16;
  setup.base_width = 12;
  setup.rebranch = ReBranchConfig{4, 4};
  setup.pretrain_samples_per_class = 30;
  setup.target_train_samples_per_class = 25;
  setup.target_test_samples_per_class = 20;
  setup.pretrain_cfg.epochs = 10;
  setup.finetune_cfg.epochs = 8;
  return setup;
}

void run_fig10a() {
  std::printf("=== Figure 10(a): transfer accuracy, VGG-8 backbone ===\n");
  TransferHarness harness(bench_setup(BackboneKind::kVgg8));
  const auto targets = all_transfer_targets(16);
  TextTable t({"Target", "All SRAM [%]", "All ROM [%]", "ReBranch [%]"});
  for (const auto& target : targets) {
    std::vector<double> row;
    for (auto opt : {TransferOption::kAllSram, TransferOption::kAllRom,
                     TransferOption::kReBranch}) {
      row.push_back(100.0 * harness.run(opt, target).accuracy);
    }
    t.add_row(target.name, row, 1);
  }
  t.print();
  std::printf("(source-suite accuracy of the pretrained backbone: %.1f%%)\n\n",
              100.0 * harness.source_accuracy());
}

void run_fig10b() {
  std::printf(
      "=== Figure 10(b): accuracy + normalized memory area "
      "(cifar10-like target) ===\n");
  TextTable t({"Backbone", "Method", "Accuracy [%]", "Mem area [norm]"});
  for (auto backbone : {BackboneKind::kVgg8, BackboneKind::kResNet18}) {
    TransferHarness harness(bench_setup(backbone));
    const DatasetSpec target = cifar10_like_spec(16);
    double all_sram_area = 0.0;
    for (auto opt : {TransferOption::kAllSram, TransferOption::kAllRom,
                     TransferOption::kDeepConv, TransferOption::kReBranch}) {
      const TransferOutcome o = harness.run(opt, target);
      if (opt == TransferOption::kAllSram) all_sram_area = o.memory_area_mm2;
      t.add_row({backbone_name(backbone), option_name(opt),
                 format_fixed(100.0 * o.accuracy, 1),
                 format_fixed(o.memory_area_mm2 / all_sram_area, 3)});
    }
  }
  t.print();
  std::printf("\n");
}

void BM_TransferFinetuneEpoch(benchmark::State& state) {
  TransferSetup setup = bench_setup(BackboneKind::kVgg8);
  setup.finetune_cfg.epochs = 1;
  TransferHarness harness(setup);
  const DatasetSpec target = mnist_like_spec(16);
  for (auto _ : state) {
    const TransferOutcome o = harness.run(TransferOption::kReBranch, target);
    benchmark::DoNotOptimize(o.accuracy);
  }
}
BENCHMARK(BM_TransferFinetuneEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig10a();
  run_fig10b();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
