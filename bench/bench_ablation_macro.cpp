// Macro-level ablations for the design choices DESIGN.md calls out:
//  * ADC resolution vs MVM fidelity and energy (the paper fixes 5 bits;
//    this sweep shows why: below 5 bits quantization error explodes,
//    above it energy is wasted).
//  * Rows-per-activation vs fidelity/energy (the paper's "trade-off
//    between the number of ADCs and simultaneously activated rows").
//  * Cell-mismatch sigma (ROM's 1T cells vs SRAM's 6T compute cells).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "macro/cim_macro.hpp"

namespace {

using namespace yoloc;

struct FidelityResult {
  double rel_error = 0.0;      // mean relative |err| on random MVMs
  double energy_per_op = 0.0;  // pJ per op (MAC = 2 ops)
  double tops_per_w = 0.0;
};

FidelityResult measure(const MacroConfig& cfg, int trials = 48) {
  const CimMacro macro(cfg);
  Rng rng(99);
  const int k = cfg.geometry.rows;
  const int m = 8;
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  MacroRunStats stats;
  double err_acc = 0.0;
  int err_count = 0;
  for (int t = 0; t < trials; ++t) {
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    macro.mvm(w.data(), m, k, x.data(), y.data(), rng, stats);
    for (int j = 0; j < m; ++j) {
      std::int64_t ref = 0;
      for (int i = 0; i < k; ++i) {
        ref += static_cast<std::int64_t>(w[static_cast<std::size_t>(j) * k + i]) *
               x[static_cast<std::size_t>(i)];
      }
      const double denom = std::max<double>(std::llabs(ref), 10000.0);
      err_acc += std::fabs(static_cast<double>(y[static_cast<std::size_t>(j)]) -
                           static_cast<double>(ref)) /
                 denom;
      ++err_count;
    }
  }
  FidelityResult res;
  res.rel_error = err_acc / err_count;
  const double ops = 2.0 * static_cast<double>(stats.macs);
  res.energy_per_op = stats.energy_pj() / ops;
  res.tops_per_w = tops_per_watt(ops, stats.energy_pj());
  return res;
}

void run_adc_bits_sweep() {
  std::printf("=== Ablation: ADC resolution (rows/activation = 32) ===\n");
  TextTable t({"ADC bits", "Rel. MVM error [%]", "Energy [pJ/op]",
               "TOPS/W"});
  for (int bits : {3, 4, 5, 6, 7}) {
    MacroConfig cfg = default_rom_macro();
    cfg.geometry.adc_bits = bits;
    cfg.adc.bits = bits;
    // SAR ADC energy roughly doubles per extra bit.
    cfg.adc.energy_pj = 0.070 * std::pow(2.0, bits - 5);
    const FidelityResult r = measure(cfg);
    t.add_row({std::to_string(bits), format_fixed(100.0 * r.rel_error, 3),
               format_fixed(r.energy_per_op, 4),
               format_fixed(r.tops_per_w, 1)});
  }
  t.print();
  std::printf("\n");
}

void run_rows_sweep() {
  std::printf(
      "=== Ablation: rows per activation (5-bit ADC) — the paper's "
      "ADC-sharing trade-off ===\n");
  TextTable t({"Rows/activation", "Rel. MVM error [%]", "Energy [pJ/op]",
               "TOPS/W"});
  for (int rows : {16, 32, 64, 128}) {
    MacroConfig cfg = default_rom_macro();
    cfg.geometry.rows_per_activation = rows;
    // Keep the full-group discharge within the bitline range.
    cfg.bitline.i_cell_ua = 2.0 * 32.0 / rows;
    const FidelityResult r = measure(cfg);
    t.add_row({std::to_string(rows), format_fixed(100.0 * r.rel_error, 3),
               format_fixed(r.energy_per_op, 4),
               format_fixed(r.tops_per_w, 1)});
  }
  t.print();
  std::printf("\n");
}

void run_sigma_sweep() {
  std::printf("=== Ablation: cell-current mismatch sigma ===\n");
  TextTable t({"sigma_cell [%]", "Rel. MVM error [%]"});
  for (double sigma : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    MacroConfig cfg = default_rom_macro();
    cfg.bitline.sigma_cell = sigma;
    const FidelityResult r = measure(cfg);
    t.add_row({format_fixed(100.0 * sigma, 0),
               format_fixed(100.0 * r.rel_error, 3)});
  }
  t.print();
  std::printf("(ROM 1T cells ~2%%; 6T SRAM compute cells ~5%%)\n\n");
}

void BM_MacroFidelityMeasurement(benchmark::State& state) {
  const MacroConfig cfg = default_rom_macro();
  for (auto _ : state) {
    const FidelityResult r = measure(cfg, /*trials=*/4);
    benchmark::DoNotOptimize(r.rel_error);
  }
}
BENCHMARK(BM_MacroFidelityMeasurement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_adc_bits_sweep();
  run_rows_sweep();
  run_sigma_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
