// Figure 14: chip-level comparison of YOLoC vs single-chip SRAM-CiM vs
// SRAM-CiM chiplets.
//  (a) Area vs energy efficiency for the YOLO workload (paper: YOLoC at
//      a fraction of the silicon with the best efficiency; single chip
//      DRAM-bound; ~10 chiplets reach parity at ~10x silicon).
//  (b) YOLoC chip area breakdown (paper: array 37%, ADC 21%, R/W 20%,
//      peripheral 12%, buffer 10%).
//  (c) Energy breakdown of the iso-area SRAM-CiM baseline per model and
//      the YOLoC energy-efficiency improvement (paper: VGG-8 1x,
//      ResNet-18 4.8x, Tiny-YOLO 10.2x, YOLO 14.8x).
//
// Iso-area anchor: the SRAM-CiM chip that holds the smallest model
// (VGG-8) entirely — the configuration where the paper reports 1x.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/system_sim.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace yoloc;

void run_fig14a(const SystemSimulator& sim, double anchor_mm2) {
  std::printf("=== Figure 14(a): area vs energy efficiency (YOLO) ===\n");
  const IsoAreaComparison cmp =
      compare_iso_area(sim, yolo_darknet19_model(), 4, 4, 1, anchor_mm2);
  TextTable t({"Configuration", "Chips", "Total area [mm^2]",
               "Energy eff [TOPS/W]", "Energy/inf [uJ]"});
  for (const SystemReport* r :
       {&cmp.yoloc, &cmp.sram_single, &cmp.sram_chiplets}) {
    t.add_row({deployment_name(r->deployment), std::to_string(r->area.chips),
               format_fixed(r->area.total_mm2, 1),
               format_fixed(r->tops_per_watt(), 2),
               format_fixed(r->energy_uj(), 1)});
  }
  t.print();
  std::printf("Chiplet silicon vs YOLoC: %.1fx; chiplet efficiency vs "
              "YOLoC: %.2fx (paper: ~10x area saving, ~2%% efficiency "
              "delta)\n\n",
              cmp.sram_chiplets.area.total_mm2 / cmp.yoloc.area.total_mm2,
              cmp.sram_chiplets.tops_per_watt() / cmp.yoloc.tops_per_watt());
}

void run_fig14b(const SystemSimulator& sim) {
  std::printf("=== Figure 14(b): YOLoC chip area breakdown (YOLO) ===\n");
  NetworkModel net = yolo_darknet19_model();
  assign_backbone_to_rom(net, 1);
  const SystemReport r = sim.simulate_yoloc(apply_rebranch(net, 4, 4));
  const double total = r.area.total_mm2;
  TextTable t({"Component", "Area [mm^2]", "Share [%]", "Paper [%]"});
  t.add_row({"CiM array", format_fixed(r.area.array_mm2, 2),
             format_fixed(100.0 * r.area.array_mm2 / total, 1), "37"});
  t.add_row({"ADC", format_fixed(r.area.adc_mm2, 2),
             format_fixed(100.0 * r.area.adc_mm2 / total, 1), "21"});
  t.add_row({"R/W interface", format_fixed(r.area.rw_mm2, 2),
             format_fixed(100.0 * r.area.rw_mm2 / total, 1), "20"});
  t.add_row({"Peripheral", format_fixed(r.area.peripheral_mm2, 2),
             format_fixed(100.0 * r.area.peripheral_mm2 / total, 1), "12"});
  t.add_row({"Buffer", format_fixed(r.area.buffer_mm2, 2),
             format_fixed(100.0 * r.area.buffer_mm2 / total, 1), "10"});
  t.print();
  std::printf("\n");
}

void run_fig14c(const SystemSimulator& sim, double anchor_mm2) {
  std::printf(
      "=== Figure 14(c): baseline energy breakdown + YOLoC improvement "
      "===\n");
  TextTable t({"Model", "CiM [%]", "Periph [%]", "Buffer+NoC [%]",
               "DRAM(+write) [%]", "Improvement", "Paper"});
  const char* paper[] = {"1x", "4.8x", "10.2x", "14.8x"};
  int idx = 0;
  for (const auto& net : paper_model_suite()) {
    const IsoAreaComparison cmp =
        compare_iso_area(sim, net, 4, 4, 1, anchor_mm2);
    const EnergyBreakdown& e = cmp.sram_single.energy;
    const double total = e.total_pj();
    const double dram = e.dram_pj + e.weight_write_pj;
    const double improvement =
        cmp.yoloc.tops_per_watt() / cmp.sram_single.tops_per_watt();
    t.add_row({net.name, format_fixed(100.0 * e.cim_array_pj / total, 1),
               format_fixed(100.0 * e.cim_peripheral_pj / total, 1),
               format_fixed(100.0 * (e.buffer_pj + e.noc_pj) / total, 1),
               format_fixed(100.0 * dram / total, 1),
               format_fixed(improvement, 1) + "x", paper[idx]});
    ++idx;
  }
  t.print();
  std::printf("\n");
}

void run_latency_overhead(const SystemSimulator& sim) {
  std::printf("=== ReBranch latency overhead (paper: ~8%% on YOLO) ===\n");
  NetworkModel base = yolo_darknet19_model();
  assign_backbone_to_rom(base, 1);
  const SystemReport with_branch =
      sim.simulate_yoloc(apply_rebranch(base, 4, 4));
  const SystemReport without_branch = sim.simulate_yoloc(base);
  std::printf("latency without branch: %.1f us, with branch: %.1f us "
              "(overhead %.1f%%)\n\n",
              without_branch.latency.total_ns() * 1e-3,
              with_branch.latency.total_ns() * 1e-3,
              100.0 * (with_branch.latency.total_ns() /
                           without_branch.latency.total_ns() -
                       1.0));
}

void BM_SystemSimulationYolo(benchmark::State& state) {
  const SystemSimulator sim{SystemConfig{}};
  NetworkModel net = yolo_darknet19_model();
  assign_backbone_to_rom(net, 1);
  const NetworkModel deployed = apply_rebranch(net, 4, 4);
  for (auto _ : state) {
    const SystemReport r = sim.simulate_yoloc(deployed);
    benchmark::DoNotOptimize(r.energy.total_pj());
  }
}
BENCHMARK(BM_SystemSimulationYolo)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const SystemSimulator sim{SystemConfig{}};
  const double anchor =
      sim.sram_chip_area_for_bits(vgg8_model().weight_bits(8));
  std::printf("iso-area anchor (SRAM-CiM chip fitting VGG-8): %.1f mm^2\n\n",
              anchor);
  run_fig14a(sim, anchor);
  run_fig14b(sim);
  run_fig14c(sim, anchor);
  run_latency_overhead(sim);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
