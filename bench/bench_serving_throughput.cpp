// Serving throughput of the DeploymentPlan / ExecutionContext /
// InferenceServer runtime: images/s for batch sizes {1, 8, 32} x worker
// counts {1, 4, 8}, one JSON line per configuration (the perf-trajectory
// feed for BENCH_*.json) — plus `serving_scheduler` (fifo vs priority
// mix), `serving_fairness` (strict vs deficit-weighted round-robin under
// an interactive flood) and `serving_autobatch` (SLO-derived micro-batch
// cap) rows; see docs/serving.md for how to read them.
//
//   build/bench_serving_throughput [--mode=analog|exact] [--seconds=S]
//
// Workers scale with host cores; on an H-core box the batch-32 rows are
// expected to show ~min(workers, H)x images/s over the 1-worker row.
// YOLOC_THREADS pins the default worker count for CI.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "nn/zoo.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/inference_server.hpp"
#include "runtime/plan_serde.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;

constexpr int kImageSize = 16;

std::unique_ptr<DeploymentPlan> build_plan(MacroMvmEngine::Mode mode) {
  ZooConfig zoo;
  zoo.image_size = kImageSize;
  zoo.base_width = 8;
  zoo.num_classes = 10;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Rng rng(7);
  Tensor calib =
      Tensor::rand_uniform({8, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(model), calib,
                                          std::move(options));
}

struct RunResult {
  std::uint64_t images = 0;
  double seconds = 0.0;
  double avg_microbatch = 0.0;
  double energy_pj_per_image = 0.0;
};

/// Serve waves of `batch` single-image requests until `min_seconds` of
/// wall clock have elapsed (at least two waves).
RunResult run_config(const DeploymentPlan& plan, int workers, int batch,
                     double min_seconds) {
  ServerOptions options;
  options.workers = workers;
  options.max_microbatch = 8;
  InferenceServer server(plan, options);

  Rng rng(123);
  Tensor wave =
      Tensor::rand_uniform({batch, 3, kImageSize, kImageSize}, rng, 0.0f,
                           1.0f);
  (void)server.infer(wave);  // warmup: touches every layer + scratch
  server.wait_idle();
  server.reset_stats();
  const ServerMetrics warm = server.metrics();

  const auto start = Clock::now();
  std::uint64_t images = 0;
  int waves = 0;
  for (;;) {
    (void)server.infer(wave);
    images += static_cast<std::uint64_t>(batch);
    ++waves;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (waves >= 2 && elapsed >= min_seconds) break;
  }
  server.wait_idle();

  RunResult r;
  r.images = images;
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const ServerMetrics m = server.metrics();
  const std::uint64_t batches = m.batches - warm.batches;
  r.avg_microbatch =
      batches == 0 ? 0.0
                   : static_cast<double>(m.requests - warm.requests) /
                         static_cast<double>(batches);
  r.energy_pj_per_image =
      images == 0 ? 0.0
                  : server.total_energy_pj() / static_cast<double>(images);
  return r;
}

struct MixResult {
  double seconds = 0.0;
  MetricsSnapshot snapshot;
};

/// Scheduler phase: a batch-class flood (4-image requests, bounded
/// in-flight window) plus a closed-loop single-image probe stream. With
/// `priority_mix` the probes ride the interactive lane; without it
/// everything shares the batch lane — the FIFO-equivalent baseline the
/// acceptance criterion compares against (probe p99 queue-wait should
/// drop hard under the priority mix at near-equal total throughput).
MixResult run_mix(const DeploymentPlan& plan, int workers, double min_seconds,
                  bool priority_mix) {
  SchedulerOptions options;
  options.workers = workers;
  options.max_microbatch = 8;
  Scheduler scheduler(plan, options);

  Rng rng(123);
  const Tensor bulk =
      Tensor::rand_uniform({4, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  const Tensor probe =
      Tensor::rand_uniform({1, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  (void)scheduler.submit(bulk).get();  // warmup: layers, scratch, EWMA
  scheduler.wait_idle();
  scheduler.reset_metrics();  // snapshot covers the timed phase only

  const auto start = Clock::now();
  std::atomic<bool> stop{false};
  std::thread prober([&] {
    const SubmitOptions so{
        priority_mix ? Priority::kInteractive : Priority::kBatch,
        std::chrono::nanoseconds(0)};
    while (!stop.load(std::memory_order_relaxed)) {
      (void)scheduler.submit(probe, so).get();
      // Pace the probes: interactive traffic is sparse per user. An
      // unpaced closed loop would monopolize a strict-priority worker
      // and measure starvation, not scheduling.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::deque<std::future<Tensor>> window;
  for (;;) {
    window.push_back(scheduler.submit(bulk));
    if (window.size() > 32) {
      (void)window.front().get();
      window.pop_front();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds) break;
  }
  stop.store(true, std::memory_order_relaxed);
  prober.join();
  for (auto& f : window) (void)f.get();
  scheduler.wait_idle();

  MixResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.snapshot = scheduler.metrics_snapshot();
  return r;
}

/// Fairness phase: a sustained closed-loop interactive flood (deep
/// enough to keep every worker busy) plus a paced best-effort stream.
/// Under strict priority the best-effort lane starves until the flood
/// stops; under weighted-fair {8, 3, 1} it keeps its proportional share,
/// so its p99 stays bounded DURING the flood at near-equal total
/// throughput — the ISSUE-4 acceptance comparison. The snapshot is taken
/// at flood end, before the drain, so starvation is visible.
MixResult run_fairness(const DeploymentPlan& plan, int workers,
                       double min_seconds, bool weighted_fair) {
  SchedulerOptions options;
  options.workers = workers;
  options.max_microbatch = 8;
  if (weighted_fair) options.lane_weights = {8.0, 3.0, 1.0};
  Scheduler scheduler(plan, options);

  Rng rng(321);
  const Tensor flood_img =
      Tensor::rand_uniform({1, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  const Tensor be_img =
      Tensor::rand_uniform({1, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  (void)scheduler.submit(flood_img).get();  // warmup: layers, scratch, EWMA
  scheduler.wait_idle();
  scheduler.reset_metrics();

  const auto start = Clock::now();
  std::atomic<bool> stop{false};
  std::thread best_effort([&] {
    std::deque<std::future<Tensor>> window;
    while (!stop.load(std::memory_order_relaxed)) {
      window.push_back(scheduler.submit(
          be_img, {Priority::kBestEffort, std::chrono::nanoseconds(0)}));
      // Bounded in-flight: under strict priority these sit queued (that
      // IS the starvation being measured), so don't block on .get().
      if (window.size() > 8) {
        window.pop_front();  // future destroyed; promise still fulfilled
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    window.clear();
  });

  std::deque<std::future<Tensor>> flood;
  MixResult r;
  for (;;) {
    flood.push_back(scheduler.submit(
        flood_img, {Priority::kInteractive, std::chrono::nanoseconds(0)}));
    if (flood.size() > static_cast<std::size_t>(32 * workers)) {
      (void)flood.front().get();
      flood.pop_front();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds) break;
  }
  // Snapshot while the flood is still live: best-effort starvation under
  // strict priority only shows before the flood drains.
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.snapshot = scheduler.metrics_snapshot();
  stop.store(true, std::memory_order_relaxed);
  best_effort.join();
  for (auto& f : flood) (void)f.get();
  scheduler.wait_idle();
  return r;
}

/// SLO-aware auto-batching phase: one deep closed-loop batch-lane stream;
/// with a lane SLO the effective micro-batch shrinks to the latency
/// budget instead of always fusing to the global cap.
MixResult run_autobatch(const DeploymentPlan& plan, double min_seconds,
                        std::chrono::nanoseconds slo) {
  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 8;
  options.lane_slo[static_cast<std::size_t>(Priority::kBatch)] = slo;
  Scheduler scheduler(plan, options);

  Rng rng(555);
  const Tensor img =
      Tensor::rand_uniform({1, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  (void)scheduler.submit(img).get();  // warmup populates the EWMA estimate
  scheduler.wait_idle();
  scheduler.reset_metrics();

  const auto start = Clock::now();
  std::deque<std::future<Tensor>> window;
  for (;;) {
    window.push_back(scheduler.submit(img));
    if (window.size() > 48) {
      (void)window.front().get();
      window.pop_front();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds) break;
  }
  for (auto& f : window) (void)f.get();
  scheduler.wait_idle();

  MixResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.snapshot = scheduler.metrics_snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  MacroMvmEngine::Mode mode = MacroMvmEngine::Mode::kExactCost;
  double min_seconds = 0.4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=analog") == 0) {
      mode = MacroMvmEngine::Mode::kAnalog;
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      min_seconds = std::atof(argv[i] + 10);
    }
  }

  const char* mode_name =
      mode == MacroMvmEngine::Mode::kAnalog ? "analog" : "exact-cost";

  // Cold-start comparison: lowering + calibration from the float model
  // vs. rebuilding the same plan from a .yolocplan artifact. The serving
  // rows below run on the LOADED plan, so the whole trajectory exercises
  // the calibration-free startup path.
  const auto build_start = Clock::now();
  auto fresh = build_plan(mode);
  const double calibrate_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - build_start)
          .count();
  // PID-unique name: concurrent bench runs must not clobber each other's
  // artifact (mode travels inside it — a collision would mislabel rows).
  const auto plan_path =
      std::filesystem::temp_directory_path() /
      ("bench_serving." + std::to_string(::getpid()) + kPlanFileExtension);
  save_plan(*fresh, plan_path.string());
  fresh.reset();
  const auto load_start = Clock::now();
  auto plan = load_plan(plan_path.string());
  const double load_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - load_start)
          .count();
  const auto plan_bytes = std::filesystem::file_size(plan_path);
  std::filesystem::remove(plan_path);
  std::printf(
      "{\"bench\":\"serving_startup\",\"mode\":\"%s\","
      "\"startup_ms\":{\"calibrate\":%.3f,\"load_plan\":%.3f},"
      "\"plan_bytes\":%llu}\n",
      mode_name, calibrate_ms, load_ms,
      static_cast<unsigned long long>(plan_bytes));
  std::fflush(stdout);

  const unsigned host_cores = std::thread::hardware_concurrency();

  for (const int workers : {1, 4, 8}) {
    for (const int batch : {1, 8, 32}) {
      const RunResult r = run_config(*plan, workers, batch, min_seconds);
      std::printf(
          "{\"bench\":\"serving_throughput\",\"mode\":\"%s\","
          "\"workers\":%d,\"batch\":%d,\"microbatch\":8,"
          "\"host_cores\":%u,\"pool_workers\":%zu,"
          "\"images\":%llu,\"seconds\":%.4f,\"images_per_s\":%.2f,"
          "\"avg_microbatch\":%.2f,\"energy_pj_per_image\":%.1f}\n",
          mode_name, workers, batch, host_cores, parallel_workers(),
          static_cast<unsigned long long>(r.images), r.seconds,
          static_cast<double>(r.images) / r.seconds, r.avg_microbatch,
          r.energy_pj_per_image);
      std::fflush(stdout);
    }
  }

  // Priority-mix trajectory: FIFO-equivalent baseline vs. priority
  // scheduling, same synthetic load. Headline fields surface the
  // acceptance comparison (probe-class p99 queue-wait, total images/s);
  // the full MetricsRegistry snapshot (per-class p50/p95/p99 latency,
  // batch occupancy, expired/rejected counts) is embedded verbatim.
  for (const int workers : {1, 4}) {
    for (const bool priority_mix : {false, true}) {
      const MixResult r = run_mix(*plan, workers, min_seconds, priority_mix);
      const auto& probe_class =
          r.snapshot.classes[static_cast<std::size_t>(
              priority_mix ? Priority::kInteractive : Priority::kBatch)];
      const auto& bulk_class =
          r.snapshot.classes[static_cast<std::size_t>(Priority::kBatch)];
      std::printf(
          "{\"bench\":\"serving_scheduler\",\"mode\":\"%s\",\"mix\":\"%s\","
          "\"workers\":%d,\"seconds\":%.4f,\"images_per_s\":%.2f,"
          "\"probe_p99_queue_ms\":%.4f,\"bulk_p99_queue_ms\":%.4f,"
          "\"metrics\":%s}\n",
          mode_name, priority_mix ? "priority" : "fifo", workers, r.seconds,
          static_cast<double>(r.snapshot.served_images) / r.seconds,
          probe_class.queue_wait.p99_ms, bulk_class.queue_wait.p99_ms,
          r.snapshot.to_json().c_str());
      std::fflush(stdout);
    }
  }

  // Fairness trajectory: strict priority vs deficit-weighted round-robin
  // under a sustained interactive flood. The acceptance criterion reads
  // off these rows: weighted_fair keeps be_p99_e2e_ms bounded (strict
  // starves the lane: be_served ~ 0 and the p99 is the flood length)
  // while images_per_s stays within ~5% of the strict row.
  for (const int workers : {1, 4}) {
    for (const bool weighted_fair : {false, true}) {
      const MixResult r =
          run_fairness(*plan, workers, min_seconds, weighted_fair);
      const auto& be = r.snapshot.classes[static_cast<std::size_t>(
          Priority::kBestEffort)];
      const auto& inter = r.snapshot.classes[static_cast<std::size_t>(
          Priority::kInteractive)];
      std::printf(
          "{\"bench\":\"serving_fairness\",\"mode\":\"%s\","
          "\"policy\":\"%s\",\"workers\":%d,\"seconds\":%.4f,"
          "\"images_per_s\":%.2f,\"be_served\":%llu,\"be_queued\":%llu,"
          "\"be_p99_e2e_ms\":%.4f,\"interactive_p99_queue_ms\":%.4f}\n",
          mode_name, weighted_fair ? "weighted_fair" : "strict", workers,
          r.seconds,
          static_cast<double>(r.snapshot.served_images) / r.seconds,
          static_cast<unsigned long long>(be.served_requests),
          static_cast<unsigned long long>(be.queue_depth), be.e2e.p99_ms,
          inter.queue_wait.p99_ms);
      std::fflush(stdout);
    }
  }

  // SLO-aware auto-batching trajectory: the same deep batch-lane stream
  // with no SLO (fuses to the global micro-batch cap) vs a tight lane
  // SLO (the effective cap shrinks to the latency budget). Expect
  // avg_microbatch and p99 e2e to drop together on the SLO row.
  for (const double slo_ms : {0.0, 2.0}) {
    const MixResult r = run_autobatch(
        *plan, min_seconds,
        std::chrono::nanoseconds(static_cast<std::int64_t>(slo_ms * 1e6)));
    const auto& batch_class =
        r.snapshot.classes[static_cast<std::size_t>(Priority::kBatch)];
    std::printf(
        "{\"bench\":\"serving_autobatch\",\"mode\":\"%s\","
        "\"slo_ms\":%.1f,\"seconds\":%.4f,\"images_per_s\":%.2f,"
        "\"avg_microbatch\":%.2f,\"max_microbatch\":%d,"
        "\"batch_p99_e2e_ms\":%.4f}\n",
        mode_name, slo_ms, r.seconds,
        static_cast<double>(r.snapshot.served_images) / r.seconds,
        r.snapshot.avg_batch_occupancy, r.snapshot.max_batch_occupancy,
        batch_class.e2e.p99_ms);
    std::fflush(stdout);
  }
  return 0;
}
