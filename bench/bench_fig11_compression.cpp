// Figure 11: ReBranch hyper-parameter analysis.
//  (a) Branch compression ratio D*U in {4, 16, 64} (D = U): accuracy vs
//      normalized ROM+SRAM area. Paper: D*U=16 is the knee — small D*U
//      leaves an SRAM area bottleneck, large D*U loses accuracy.
//  (b) Compression/decompression split at fixed D*U=16:
//      (D,U) in {(1,16),(2,8),(4,4),(8,2),(16,1)}. Paper: balanced 4-4
//      maximizes accuracy.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "rebranch/transfer.hpp"

namespace {

using namespace yoloc;

TransferSetup sweep_setup(BackboneKind backbone, const ReBranchConfig& rb) {
  TransferSetup setup;
  setup.backbone = backbone;
  setup.image_size = 16;
  setup.base_width = 12;  // wide enough that D=U=8 still has channels
  setup.rebranch = rb;
  setup.pretrain_samples_per_class = 25;
  setup.target_train_samples_per_class = 20;
  setup.target_test_samples_per_class = 20;
  setup.pretrain_cfg.epochs = 7;
  setup.finetune_cfg.epochs = 6;
  return setup;
}

double run_point(BackboneKind backbone, const ReBranchConfig& rb,
                 double* area_norm) {
  TransferHarness harness(sweep_setup(backbone, rb));
  const DatasetSpec target = cifar10_like_spec(16);
  const TransferOutcome rebranch = harness.run(TransferOption::kReBranch,
                                               target);
  if (area_norm != nullptr) {
    const TransferOutcome all_sram =
        harness.run(TransferOption::kAllSram, target);
    *area_norm = rebranch.memory_area_mm2 / all_sram.memory_area_mm2;
  }
  return rebranch.accuracy;
}

void run_fig11a() {
  std::printf("=== Figure 11(a): accuracy & area vs D*U (D = U) ===\n");
  TextTable t({"D*U", "VGG-8 acc [%]", "ResNet-18 acc [%]",
               "Mem area [norm, VGG-8]"});
  for (int d : {2, 4, 8}) {
    const ReBranchConfig rb{d, d};
    double area_norm = 0.0;
    const double vgg = run_point(BackboneKind::kVgg8, rb, &area_norm);
    const double resnet = run_point(BackboneKind::kResNet18, rb, nullptr);
    t.add_row({std::to_string(d * d), format_fixed(100.0 * vgg, 1),
               format_fixed(100.0 * resnet, 1), format_fixed(area_norm, 3)});
  }
  t.print();
  std::printf("\n");
}

void run_fig11b() {
  std::printf(
      "=== Figure 11(b): accuracy vs D-U split at fixed D*U = 16 ===\n");
  TextTable t({"D-U", "VGG-8 acc [%]", "ResNet-18 acc [%]"});
  const std::pair<int, int> splits[] = {{1, 16}, {2, 8}, {4, 4}, {8, 2},
                                        {16, 1}};
  for (const auto& [d, u] : splits) {
    const ReBranchConfig rb{d, u};
    const double vgg = run_point(BackboneKind::kVgg8, rb, nullptr);
    const double resnet = run_point(BackboneKind::kResNet18, rb, nullptr);
    t.add_row({std::to_string(d) + "-" + std::to_string(u),
               format_fixed(100.0 * vgg, 1), format_fixed(100.0 * resnet, 1)});
  }
  t.print();
  std::printf("\n");
}

void BM_ReBranchModelBuild(benchmark::State& state) {
  ZooConfig zoo;
  zoo.image_size = 16;
  zoo.base_width = 16;
  for (auto _ : state) {
    LayerPtr net = build_vgg8_lite(zoo, make_rebranch_factory({4, 4}));
    benchmark::DoNotOptimize(net.get());
  }
}
BENCHMARK(BM_ReBranchModelBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig11a();
  run_fig11b();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
