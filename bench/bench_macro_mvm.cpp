// Kernel-level throughput of the CiM macro MVM: packed (deploy-time
// weight bit-plane packing, PR "ROM packing") vs legacy (per-call mask
// derivation — the pre-packing baseline, still compiled unchanged) across
// {rows, input_bits, weight_bits} geometries, in analog mode with the
// default ROM noise, in noise-free analog mode (sigma_cell = 0,
// adc noise = 0 — the configuration every fidelity test runs), and in
// exact-cost mode. One JSON line per (geometry, variant, path), same
// trajectory-file conventions as bench_serving_throughput:
//
//   {"bench":"macro_mvm","path":"packed","variant":"analog",...,
//    "ns_per_mac":..,"columns_per_s":..,"pack_ms":..,
//    "speedup_vs_legacy":..}
//
// Before timing, each configuration asserts the packed outputs and run
// stats are bit-identical to the legacy path under the same seed — the
// bench refuses to report a speedup for a kernel that changed results.
//
//   build/bench_macro_mvm [--seconds=S]   (default 0.4s per cell)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "core/macro_engine.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;

struct Geometry {
  int rows;
  int input_bits;
  int weight_bits;
};

struct Variant {
  const char* name;
  MacroMvmEngine::Mode mode;
  bool noise_free;
};

struct Measurement {
  double seconds = 0.0;
  std::uint64_t columns = 0;
  double pack_ms = 0.0;
  std::size_t packed_bytes = 0;
};

MacroConfig make_config(const Geometry& geom, bool noise_free) {
  MacroConfig cfg = default_rom_macro();
  cfg.geometry.rows = geom.rows;
  cfg.geometry.input_bits = geom.input_bits;
  cfg.geometry.weight_bits = geom.weight_bits;
  if (cfg.geometry.rows_per_activation > geom.rows) {
    cfg.geometry.rows_per_activation = geom.rows;
  }
  if (noise_free) {
    cfg.bitline.sigma_cell = 0.0;
    cfg.adc.noise_sigma_v = 0.0;
  }
  cfg.validate();
  return cfg;
}

/// True when outputs AND every modeled stat agree exactly.
bool bit_identical(const std::vector<std::int32_t>& ya,
                   const std::vector<std::int32_t>& yb,
                   const MacroRunStats& sa, const MacroRunStats& sb) {
  return ya == yb && sa.array.adc_conversions == sb.array.adc_conversions &&
         sa.array.wl_pulses == sb.array.wl_pulses &&
         sa.array.shift_adds == sb.array.shift_adds &&
         sa.array.adc_energy_pj == sb.array.adc_energy_pj &&
         sa.array.precharge_energy_pj == sb.array.precharge_energy_pj &&
         sa.array.wl_energy_pj == sb.array.wl_energy_pj &&
         sa.array.shift_add_energy_pj == sb.array.shift_add_energy_pj &&
         sa.macro_ops == sb.macro_ops && sa.macs == sb.macs &&
         sa.latency_ns == sb.latency_ns;
}

Measurement run_path(const MacroMvmEngine& engine, int m, int k, int p,
                     const std::vector<std::int8_t>& w,
                     const std::vector<std::uint8_t>& x, double min_seconds) {
  std::vector<std::int32_t> y(static_cast<std::size_t>(m) * p);
  Rng rng(11);
  MacroRunStats stats;
  MvmScratch scratch;
  MvmSession session{&rng, &stats, &scratch};
  engine.mvm_batch(w.data(), m, k, x.data(), p, y.data(), session);  // warm

  Measurement out;
  const auto start = Clock::now();
  int iters = 0;
  for (;;) {
    engine.mvm_batch(w.data(), m, k, x.data(), p, y.data(), session);
    ++iters;
    out.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (out.seconds >= min_seconds && iters >= 3) break;
  }
  out.columns = static_cast<std::uint64_t>(iters) * p;
  if (const PackedWeightsCache* cache = engine.packed_cache()) {
    out.pack_ms = cache->total_pack_ms();
    out.packed_bytes = cache->packed_bytes();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double min_seconds = 0.4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      min_seconds = std::atof(argv[i] + 10);
    }
  }

  const Geometry geometries[] = {
      {128, 8, 8},  // YOLO-scale: paper Table I operating point
      {128, 4, 4},
      {64, 8, 8},
      {64, 4, 4},
  };
  const Variant variants[] = {
      {"analog", MacroMvmEngine::Mode::kAnalog, false},
      {"analog_noise_free", MacroMvmEngine::Mode::kAnalog, true},
      {"exact_cost", MacroMvmEngine::Mode::kExactCost, false},
  };
  const int m = 128;  // output rows (YOLO-scale conv channel tile)
  const int p = 16;   // im2col columns per engine call

  for (const Geometry& geom : geometries) {
    // k > rows exercises the multi-tile path on one of the sweeps.
    const int k = geom.rows == 128 ? geom.rows : geom.rows * 2 + 10;
    Rng init(3);
    std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
    std::vector<std::uint8_t> x(static_cast<std::size_t>(k) * p);
    for (auto& v : w) v = static_cast<std::int8_t>(init.uniform_int(-127, 127));
    for (auto& v : x) v = static_cast<std::uint8_t>(init.uniform_int(0, 255));

    for (const Variant& variant : variants) {
      const MacroConfig cfg = make_config(geom, variant.noise_free);
      const CimMacro macro(cfg);
      PackedWeightsCache cache;
      const MacroMvmEngine legacy(macro, variant.mode);
      const MacroMvmEngine packed(macro, variant.mode, &cache);

      // Refuse to time a kernel whose results changed.
      {
        std::vector<std::int32_t> ya(static_cast<std::size_t>(m) * p);
        std::vector<std::int32_t> yb(static_cast<std::size_t>(m) * p);
        Rng ra(7);
        Rng rb(7);
        MacroRunStats sa, sb;
        MvmScratch sca, scb;
        MvmSession sea{&ra, &sa, &sca}, seb{&rb, &sb, &scb};
        legacy.mvm_batch(w.data(), m, k, x.data(), p, ya.data(), sea);
        packed.mvm_batch(w.data(), m, k, x.data(), p, yb.data(), seb);
        if (!bit_identical(ya, yb, sa, sb)) {
          std::fprintf(stderr,
                       "FATAL: packed path diverged from legacy at "
                       "rows=%d ib=%d wb=%d variant=%s\n",
                       geom.rows, geom.input_bits, geom.weight_bits,
                       variant.name);
          return 1;
        }
      }

      const Measurement lm = run_path(legacy, m, k, p, w, x, min_seconds);
      const Measurement pm = run_path(packed, m, k, p, w, x, min_seconds);
      const double macs = static_cast<double>(m) * k;
      const double legacy_ns_per_mac =
          lm.seconds * 1e9 / (macs * static_cast<double>(lm.columns));
      const double packed_ns_per_mac =
          pm.seconds * 1e9 / (macs * static_cast<double>(pm.columns));
      const double legacy_cols_s =
          static_cast<double>(lm.columns) / lm.seconds;
      const double packed_cols_s =
          static_cast<double>(pm.columns) / pm.seconds;

      std::printf(
          "{\"bench\":\"macro_mvm\",\"path\":\"legacy\",\"variant\":\"%s\","
          "\"rows\":%d,\"input_bits\":%d,\"weight_bits\":%d,\"m\":%d,"
          "\"k\":%d,\"p\":%d,\"ns_per_mac\":%.4f,\"columns_per_s\":%.1f}\n",
          variant.name, geom.rows, geom.input_bits, geom.weight_bits, m, k,
          p, legacy_ns_per_mac, legacy_cols_s);
      std::printf(
          "{\"bench\":\"macro_mvm\",\"path\":\"packed\",\"variant\":\"%s\","
          "\"rows\":%d,\"input_bits\":%d,\"weight_bits\":%d,\"m\":%d,"
          "\"k\":%d,\"p\":%d,\"ns_per_mac\":%.4f,\"columns_per_s\":%.1f,"
          "\"pack_ms\":%.4f,\"packed_bytes\":%zu,"
          "\"speedup_vs_legacy\":%.2f}\n",
          variant.name, geom.rows, geom.input_bits, geom.weight_bits, m, k,
          p, packed_ns_per_mac, packed_cols_s, pm.pack_ms, pm.packed_bytes,
          packed_cols_s / legacy_cols_s);
      std::fflush(stdout);
    }
  }
  return 0;
}
