// Detection example: the paper's motivating workload. Trains a
// DarkNet-lite grid detector on synthetic COCO-like scenes, retargets it
// to a traffic-detection domain with ReBranch, and reports mAP plus the
// full-size YOLO chip cost from the system model.
//
//   build/examples/detection_deploy

#include <cstdio>

#include "arch/system_sim.hpp"
#include "common/table.hpp"
#include "rebranch/detection_transfer.hpp"

int main() {
  using namespace yoloc;

  DetectionTransferSetup setup;
  setup.image_size = 48;
  setup.base_width = 8;
  setup.pretrain_scenes = 240;
  setup.target_train_scenes = 160;
  setup.target_test_scenes = 100;
  setup.pretrain_cfg.epochs = 10;
  setup.finetune_cfg.epochs = 6;

  std::printf("pretraining the detector on COCO-like scenes...\n");
  DetectionTransferHarness harness(setup);
  std::printf("source mAP: %.1f%%\n\n", 100.0 * harness.source_map());

  const DetectionSpec target = traffic_like_spec(48);
  std::printf("retargeting to '%s' scenes...\n", target.name.c_str());
  const DetectionOutcome baseline =
      harness.run(DetectorOption::kSramCim, target);
  const DetectionOutcome yoloc = harness.run(DetectorOption::kYoloc, target);
  std::printf("  SRAM-CiM baseline (all layers retrained): mAP %.1f%%\n",
              100.0 * baseline.map);
  std::printf("  YOLoC (ReBranch fine-tune only):          mAP %.1f%%\n\n",
              100.0 * yoloc.map);

  // Full-size deployment cost of the real YOLO (DarkNet-19) model.
  const SystemSimulator sim{SystemConfig{}};
  NetworkModel yolo = yolo_darknet19_model();
  assign_backbone_to_rom(yolo, 1);
  const SystemReport chip = sim.simulate_yoloc(apply_rebranch(yolo, 4, 4));
  std::printf("full-size YOLO on a YOLoC chip:\n");
  std::printf("  chip area          : %.1f mm^2\n", chip.area.total_mm2);
  std::printf("  energy / inference : %.1f uJ\n", chip.energy_uj());
  std::printf("  energy efficiency  : %.2f TOPS/W\n", chip.tops_per_watt());
  std::printf("  latency / frame    : %.2f ms (%.0f fps)\n",
              chip.latency.total_ns() * 1e-6,
              1e9 / chip.latency.total_ns());
  std::printf("  ROM-resident bits  : %.0f Mb (%.1f%% of weights)\n",
              chip.rom_bits_used / 1e6,
              100.0 * chip.rom_bits_used /
                  (chip.rom_bits_used + chip.sram_cim_bits_used));
  return 0;
}
