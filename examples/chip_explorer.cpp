// Chip-design-space explorer: sweeps the deployment knobs of the system
// model and prints how energy efficiency, area and latency respond —
// the kind of what-if analysis an architect would run before committing
// a ROM mask set.
//
//   build/examples/chip_explorer

#include <cstdio>

#include "arch/system_sim.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace yoloc;

  std::printf("=== YOLoC design-space exploration (YOLO workload) ===\n\n");

  // Sweep 1: ReBranch compression ratio vs chip area & SRAM share.
  std::printf("-- ReBranch D*U vs chip cost --\n");
  TextTable t1({"D=U", "Chip area [mm^2]", "SRAM-CiM bits [Mb]",
                "Energy/inf [uJ]", "Latency [us]"});
  const SystemSimulator sim{SystemConfig{}};
  for (int d : {2, 4, 8}) {
    NetworkModel net = yolo_darknet19_model();
    assign_backbone_to_rom(net, 1);
    const SystemReport r = sim.simulate_yoloc(apply_rebranch(net, d, d));
    t1.add_row({std::to_string(d), format_fixed(r.area.total_mm2, 1),
                format_fixed(r.sram_cim_bits_used / 1e6, 1),
                format_fixed(r.energy_uj(), 1),
                format_fixed(r.latency.total_ns() * 1e-3, 1)});
  }
  t1.print();

  // Sweep 2: how many parallel lanes are worth wiring up.
  std::printf("\n-- parallel subarray lanes vs latency --\n");
  TextTable t2({"Lanes", "Latency [us]", "Throughput [GOPS]"});
  for (double lanes : {16.0, 64.0, 256.0}) {
    SystemConfig cfg;
    cfg.parallel_lanes = lanes;
    const SystemSimulator s(cfg);
    NetworkModel net = yolo_darknet19_model();
    assign_backbone_to_rom(net, 1);
    const SystemReport r = s.simulate_yoloc(apply_rebranch(net, 4, 4));
    t2.add_row({format_fixed(lanes, 0),
                format_fixed(r.latency.total_ns() * 1e-3, 1),
                format_fixed(r.gops(), 0)});
  }
  t2.print();

  // Sweep 3: all four paper models on one page.
  std::printf("\n-- model suite on YOLoC chips --\n");
  TextTable t3({"Model", "Weights [M]", "Chip area [mm^2]",
                "Energy/inf [uJ]", "TOPS/W"});
  for (const auto& base : paper_model_suite()) {
    NetworkModel net = base;
    assign_backbone_to_rom(net, 1);
    const SystemReport r = sim.simulate_yoloc(apply_rebranch(net, 4, 4));
    t3.add_row({base.name, format_fixed(base.total_weights() / 1e6, 1),
                format_fixed(r.area.total_mm2, 1),
                format_fixed(r.energy_uj(), 1),
                format_fixed(r.tops_per_watt(), 2)});
  }
  t3.print();
  return 0;
}
