// Deployment artifact round trip (the paper's tape-out lifecycle in
// software): lower a model ONCE into a DeploymentPlan, freeze it as a
// .yolocplan artifact, then cold-start serving from that artifact in a
// state that holds neither the float model nor any calibration images.
//
//   build/serve_from_plan                 # save -> cold-load -> serve demo
//   build/serve_from_plan --save PATH     # write an artifact and exit
//   build/serve_from_plan --load PATH     # serve from an existing artifact
//
// The --save mode doubles as the CTest fixture that provides the golden
// artifact for `ctest -L serde` (a true cross-process round trip).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "nn/zoo.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "runtime/plan_serde.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;

constexpr int kImageSize = 16;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Optional fault-injection / canary knobs for --save (all off by
/// default, which keeps the plain `--save PATH` fixture byte-stable at
/// format version 1).
struct ArtifactFlags {
  double stuck_rate = 0.0;  ///< stuck-at-0 AND stuck-at-1 rate (ROM macro)
  double flip_rate = 0.0;   ///< transient flip rate (SRAM macro)
  std::uint64_t fault_seed = 1;
  bool fault_inactive = false;  ///< record faults dormant (chaos drills)
  int canaries = 0;             ///< golden probes to record into the plan
};

/// Lower a VGG-8-lite (backbone in ROM, head in SRAM) through the full
/// deploy pipeline: BN fold -> int8 -> engine selection -> calibration.
std::unique_ptr<DeploymentPlan> build_plan(const ArtifactFlags& flags = {}) {
  ZooConfig zoo;
  zoo.image_size = kImageSize;
  zoo.base_width = 8;
  zoo.num_classes = 10;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  DeploymentOptions options;
  if (flags.stuck_rate > 0.0) {
    options.rom_macro.faults.seed = flags.fault_seed;
    options.rom_macro.faults.stuck_at_zero_rate = flags.stuck_rate;
    options.rom_macro.faults.stuck_at_one_rate = flags.stuck_rate;
    options.rom_macro.faults.start_active = !flags.fault_inactive;
  }
  if (flags.flip_rate > 0.0) {
    options.sram_macro.faults.seed = flags.fault_seed;
    options.sram_macro.faults.transient_flip_rate = flags.flip_rate;
    options.sram_macro.faults.start_active = !flags.fault_inactive;
  }
  Rng rng(7);
  Tensor calib =
      Tensor::rand_uniform({8, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  auto plan =
      std::make_unique<DeploymentPlan>(std::move(model), calib, options);
  if (flags.canaries > 0) {
    record_canaries(*plan, flags.canaries, {1, 3, kImageSize, kImageSize});
  }
  return plan;
}

void serve_demo(const DeploymentPlan& plan) {
  ServerOptions options;
  options.max_microbatch = 4;
  InferenceServer server(plan, options);
  Rng rng(99);
  Tensor traffic =
      Tensor::rand_uniform({16, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  (void)server.infer(traffic);
  server.wait_idle();
  const ServerMetrics metrics = server.metrics();
  std::printf(
      "served %llu images on %d workers in %llu micro-batches, "
      "%.1f pJ/image macro energy\n",
      static_cast<unsigned long long>(metrics.images), server.worker_count(),
      static_cast<unsigned long long>(metrics.batches),
      server.total_energy_pj() / static_cast<double>(metrics.images));
}

int save_artifact(const std::string& path, const ArtifactFlags& flags) {
  const auto start = Clock::now();
  auto plan = build_plan(flags);
  const double build_ms = ms_since(start);
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  save_plan(*plan, path);
  std::printf("lowered + calibrated in %.1f ms; saved %llu-byte plan to %s\n",
              build_ms,
              static_cast<unsigned long long>(std::filesystem::file_size(path)),
              path.c_str());
  return 0;
}

int load_and_serve(const std::string& path) {
  const auto start = Clock::now();
  auto plan = load_plan(path);
  std::printf("cold-loaded %s in %.1f ms (%d quantized layers, "
              "no calibration run)\n",
              path.c_str(), ms_since(start), plan->quantized_layer_count());
  serve_demo(*plan);
  return 0;
}

int round_trip_demo() {
  // PID-unique name so concurrent demo runs don't clobber each other.
  const auto path =
      (std::filesystem::temp_directory_path() /
       ("serve_from_plan." + std::to_string(::getpid()) + kPlanFileExtension))
          .string();

  const auto build_start = Clock::now();
  auto original = build_plan();
  const double build_ms = ms_since(build_start);
  save_plan(*original, path);

  // Reference output before the original plan (and with it every float
  // weight and calibration artifact) is destroyed.
  Rng rng(42);
  Tensor probe =
      Tensor::rand_uniform({2, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  ExecutionContext ref_ctx(*original, 2024);
  Tensor reference = ref_ctx.infer(probe);
  original.reset();

  const auto load_start = Clock::now();
  auto loaded = load_plan(path);
  const double load_ms = ms_since(load_start);
  std::printf("startup: calibrate-from-scratch %.1f ms vs load-from-plan "
              "%.1f ms (%.0fx faster cold start)\n",
              build_ms, load_ms, build_ms / load_ms);

  ExecutionContext ctx(*loaded, 2024);
  Tensor served = ctx.infer(probe);
  const bool identical =
      same_shape(reference, served) &&
      std::memcmp(reference.data(), served.data(),
                  reference.size() * sizeof(float)) == 0;
  std::printf("loaded plan output bit-identical to saver: %s\n",
              identical ? "yes" : "NO — format bug");

  serve_demo(*loaded);
  std::filesystem::remove(path);
  return identical ? 0 : 1;
}

}  // namespace

int usage() {
  std::fprintf(
      stderr,
      "usage: serve_from_plan [--save PATH | --load PATH] [save options]\n"
      "  --fault-stuck R      stuck-at-0 AND stuck-at-1 rate (ROM macro)\n"
      "  --fault-flip R       transient flip rate (SRAM macro)\n"
      "  --fault-seed S       fault-pattern seed (default 1)\n"
      "  --fault-inactive     record the faults dormant (chaos drills\n"
      "                       activate them at runtime)\n"
      "  --canaries N         record N golden canary probes in the plan\n");
  return 2;
}

int main(int argc, char** argv) {
  std::string save_path, load_path;
  ArtifactFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fault-inactive") {
      flags.fault_inactive = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const char* value = argv[++i];
    if (arg == "--save") {
      save_path = value;
    } else if (arg == "--load") {
      load_path = value;
    } else if (arg == "--fault-stuck") {
      flags.stuck_rate = std::atof(value);
    } else if (arg == "--fault-flip") {
      flags.flip_rate = std::atof(value);
    } else if (arg == "--fault-seed") {
      flags.fault_seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--canaries") {
      flags.canaries = std::atoi(value);
    } else {
      return usage();
    }
  }
  if (!save_path.empty()) return save_artifact(save_path, flags);
  if (!load_path.empty()) return load_and_serve(load_path);
  return round_trip_demo();
}
