// Deployment artifact round trip (the paper's tape-out lifecycle in
// software): lower a model ONCE into a DeploymentPlan, freeze it as a
// .yolocplan artifact, then cold-start serving from that artifact in a
// state that holds neither the float model nor any calibration images.
//
//   build/serve_from_plan                 # save -> cold-load -> serve demo
//   build/serve_from_plan --save PATH     # write an artifact and exit
//   build/serve_from_plan --load PATH     # serve from an existing artifact
//
// The --save mode doubles as the CTest fixture that provides the golden
// artifact for `ctest -L serde` (a true cross-process round trip).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "nn/zoo.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "runtime/plan_serde.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;

constexpr int kImageSize = 16;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Lower a VGG-8-lite (backbone in ROM, head in SRAM) through the full
/// deploy pipeline: BN fold -> int8 -> engine selection -> calibration.
std::unique_ptr<DeploymentPlan> build_plan() {
  ZooConfig zoo;
  zoo.image_size = kImageSize;
  zoo.base_width = 8;
  zoo.num_classes = 10;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Rng rng(7);
  Tensor calib =
      Tensor::rand_uniform({8, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  return std::make_unique<DeploymentPlan>(std::move(model), calib,
                                          DeploymentOptions{});
}

void serve_demo(const DeploymentPlan& plan) {
  ServerOptions options;
  options.max_microbatch = 4;
  InferenceServer server(plan, options);
  Rng rng(99);
  Tensor traffic =
      Tensor::rand_uniform({16, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  (void)server.infer(traffic);
  server.wait_idle();
  const ServerMetrics metrics = server.metrics();
  std::printf(
      "served %llu images on %d workers in %llu micro-batches, "
      "%.1f pJ/image macro energy\n",
      static_cast<unsigned long long>(metrics.images), server.worker_count(),
      static_cast<unsigned long long>(metrics.batches),
      server.total_energy_pj() / static_cast<double>(metrics.images));
}

int save_artifact(const std::string& path) {
  const auto start = Clock::now();
  auto plan = build_plan();
  const double build_ms = ms_since(start);
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  save_plan(*plan, path);
  std::printf("lowered + calibrated in %.1f ms; saved %llu-byte plan to %s\n",
              build_ms,
              static_cast<unsigned long long>(std::filesystem::file_size(path)),
              path.c_str());
  return 0;
}

int load_and_serve(const std::string& path) {
  const auto start = Clock::now();
  auto plan = load_plan(path);
  std::printf("cold-loaded %s in %.1f ms (%d quantized layers, "
              "no calibration run)\n",
              path.c_str(), ms_since(start), plan->quantized_layer_count());
  serve_demo(*plan);
  return 0;
}

int round_trip_demo() {
  // PID-unique name so concurrent demo runs don't clobber each other.
  const auto path =
      (std::filesystem::temp_directory_path() /
       ("serve_from_plan." + std::to_string(::getpid()) + kPlanFileExtension))
          .string();

  const auto build_start = Clock::now();
  auto original = build_plan();
  const double build_ms = ms_since(build_start);
  save_plan(*original, path);

  // Reference output before the original plan (and with it every float
  // weight and calibration artifact) is destroyed.
  Rng rng(42);
  Tensor probe =
      Tensor::rand_uniform({2, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  ExecutionContext ref_ctx(*original, 2024);
  Tensor reference = ref_ctx.infer(probe);
  original.reset();

  const auto load_start = Clock::now();
  auto loaded = load_plan(path);
  const double load_ms = ms_since(load_start);
  std::printf("startup: calibrate-from-scratch %.1f ms vs load-from-plan "
              "%.1f ms (%.0fx faster cold start)\n",
              build_ms, load_ms, build_ms / load_ms);

  ExecutionContext ctx(*loaded, 2024);
  Tensor served = ctx.infer(probe);
  const bool identical =
      same_shape(reference, served) &&
      std::memcmp(reference.data(), served.data(),
                  reference.size() * sizeof(float)) == 0;
  std::printf("loaded plan output bit-identical to saver: %s\n",
              identical ? "yes" : "NO — format bug");

  serve_demo(*loaded);
  std::filesystem::remove(path);
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string save_path, load_path;
  for (int i = 1; i < argc; ++i) {
    const bool is_save = std::strcmp(argv[i], "--save") == 0;
    const bool is_load = std::strcmp(argv[i], "--load") == 0;
    if ((!is_save && !is_load) || i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: serve_from_plan [--save PATH | --load PATH]\n");
      return 2;
    }
    (is_save ? save_path : load_path) = argv[++i];
  }
  if (!save_path.empty()) return save_artifact(save_path);
  if (!load_path.empty()) return load_and_serve(load_path);
  return round_trip_demo();
}
