// Quickstart: train a small classifier, deploy it onto the YOLoC
// ROM-CiM + SRAM-CiM datapath, and compare float vs analog accuracy
// while metering the modeled macro energy.
//
//   build/quickstart
//
// Walks the full public API surface in ~60 lines of user code:
//   1. synthesize a dataset           (yoloc::data)
//   2. build + train a float model    (yoloc::nn)
//   3. mark ROM/SRAM residency        (parameter flags)
//   4. deploy through YolocFramework  (yoloc::core — a facade over the
//                                      DeploymentPlan/ExecutionContext
//                                      runtime)
//   5. read back accuracy + energy    (macro run stats)
//   6. serve parallel traffic with an InferenceServer over the shared
//      DeploymentPlan                 (yoloc::runtime)

#include <cstdio>

#include "core/yoloc_framework.hpp"
#include "data/classification.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "runtime/inference_server.hpp"

int main() {
  using namespace yoloc;

  // 1. A small synthetic 6-class image task (3x16x16 inputs).
  DatasetSpec spec = cifar10_like_spec(16);
  spec.num_classes = 6;
  spec.recipes.resize(6);
  Rng data_rng(7);
  const LabeledDataset train = generate_classification(spec, 30, data_rng);
  const LabeledDataset test = generate_classification(spec, 15, data_rng);

  // 2. A VGG-8-lite float model, trained with SGD.
  ZooConfig zoo;
  zoo.image_size = 16;
  zoo.base_width = 8;
  zoo.num_classes = 6;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);

  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.08f;
  cfg.verbose = true;
  std::printf("training float model...\n");
  train_classifier(*model, train.images, train.labels, cfg);
  const double float_acc =
      evaluate_classifier(*model, test.images, test.labels);
  std::printf("float accuracy: %.1f%%\n", 100.0 * float_acc);

  // 3. Deployment split: the backbone is burned into ROM-CiM, the head
  //    stays in writable SRAM-CiM.
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }

  // 4. Lower onto the CiM datapath (BN fold -> int8 -> calibration) and
  //    run inference through the analog bitline/ADC model.
  std::vector<int> calib_idx;
  for (int i = 0; i < 12; ++i) calib_idx.push_back(i);
  Tensor calibration = gather_batch(train.images, calib_idx);
  YolocFramework framework(std::move(model), calibration,
                           FrameworkOptions{});
  const double analog_acc = framework.evaluate_accuracy(test);

  // 5. Results: accuracy retention + metered macro energy.
  std::printf("analog CiM accuracy: %.1f%% (loss %.2f pts)\n",
              100.0 * analog_acc, 100.0 * (float_acc - analog_acc));
  const double images = test.size();
  std::printf("modeled macro energy: %.2f uJ/image "
              "(ROM %.1f%%, SRAM %.1f%%)\n",
              framework.total_energy_pj() * 1e-6 / images,
              100.0 * framework.rom_stats().energy_pj() /
                  framework.total_energy_pj(),
              100.0 * framework.sram_stats().energy_pj() /
                  framework.total_energy_pj());
  std::printf("quantized layers: %d\n", framework.quantized_layer_count());

  // 6. The framework's DeploymentPlan is immutable and reentrant: put a
  //    micro-batching InferenceServer in front of it to serve many
  //    requests concurrently (workers default to parallel_workers(),
  //    which honours YOLOC_THREADS).
  ServerOptions serve;
  serve.max_microbatch = 8;
  InferenceServer server(framework.plan(), serve);
  const double served_acc = evaluate_classifier(
      [&server](const Tensor& batch) { return server.infer(batch); },
      test.images, test.labels);
  server.wait_idle();  // settle the completion accounting before reading
  const ServerMetrics metrics = server.metrics();
  std::printf(
      "served %llu images on %d workers in %llu micro-batches "
      "(avg fill %.1f): accuracy %.1f%%\n",
      static_cast<unsigned long long>(metrics.images), server.worker_count(),
      static_cast<unsigned long long>(metrics.batches),
      metrics.avg_microbatch(), 100.0 * served_acc);
  return 0;
}
