// Transfer-learning example: the paper's core workflow. A backbone
// pretrained on a broad source suite is fixed in ROM at "tape-out";
// afterwards the chip is retargeted to a new task by training only the
// ReBranch residual convolutions that live in SRAM-CiM.
//
//   build/examples/transfer_learning
//
// Compares the proposed ReBranch against the All-SRAM upper bound and
// the All-ROM (frozen-extractor) lower bound on a shifted target, and
// prints the ROM/SRAM memory split of each deployment.

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "rebranch/transfer.hpp"

int main() {
  using namespace yoloc;

  TransferSetup setup;
  setup.backbone = BackboneKind::kVgg8;
  setup.image_size = 16;
  setup.base_width = 12;
  setup.rebranch = ReBranchConfig{4, 4};  // the paper's D*U = 16 knee
  setup.pretrain_samples_per_class = 30;
  setup.target_train_samples_per_class = 25;
  setup.target_test_samples_per_class = 20;
  setup.pretrain_cfg.epochs = 10;
  setup.finetune_cfg.epochs = 8;

  std::printf("pretraining VGG-8-lite on the source suite "
              "(this is the model that gets burned into ROM)...\n");
  TransferHarness harness(setup);
  std::printf("source accuracy: %.1f%%\n\n",
              100.0 * harness.source_accuracy());

  const DatasetSpec target = fashion_like_spec(16);
  std::printf("transferring to the '%s' target...\n\n", target.name.c_str());

  TextTable t({"Deployment", "Accuracy [%]", "ROM bits", "SRAM bits",
               "Memory area [mm^2]"});
  for (auto opt : {TransferOption::kAllSram, TransferOption::kAllRom,
                   TransferOption::kReBranch}) {
    const TransferOutcome o = harness.run(opt, target);
    t.add_row({option_name(opt), format_fixed(100.0 * o.accuracy, 1),
               format_si(o.split.rom_bits, 1),
               format_si(o.split.sram_bits, 1),
               format_fixed(o.memory_area_mm2, 4)});
  }
  t.print();
  std::printf(
      "\nReBranch keeps ~%d%% of weights in dense ROM while recovering the\n"
      "accuracy the frozen All-ROM deployment loses on the shifted task.\n",
      94);
  return 0;
}
