// Mixed-priority serving demo on the scheduler subsystem (src/serve/).
//
//   build/serve_traffic_mix [--plan PATH] [--seconds=S] [--strict]
//                           [--prometheus]
//
// Loads a .yolocplan artifact (or lowers a VGG-8-lite in-process when no
// --plan is given), then replays a mixed workload against one Scheduler:
//   * interactive  — single-image requests with a 100 ms deadline, a
//                    20 ms SLO budget (auto-batching cap) and one
//                    reserved worker when enough workers exist,
//   * batch        — 4-image requests, no deadline,
//   * best-effort  — single-image requests with a deliberately tight
//                    deadline so some are shed (admission/expiry).
// Lanes run under weighted-fair scheduling ({8, 3, 1}; pass --strict for
// the legacy strict-priority policy). Finishes by printing the
// MetricsRegistry JSON snapshot plus a short human-readable digest —
// or, with --prometheus, the Prometheus text exposition a /metrics
// endpoint would serve (see docs/serving.md for every metric).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "nn/zoo.hpp"
#include "runtime/plan_serde.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace yoloc;
using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;
using std::chrono::microseconds;

constexpr int kImageSize = 16;

std::unique_ptr<DeploymentPlan> build_plan() {
  ZooConfig zoo;
  zoo.image_size = kImageSize;
  zoo.base_width = 8;
  zoo.num_classes = 10;
  LayerPtr model = build_vgg8_lite(zoo, plain_conv_unit);
  for (Parameter* p : model->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Rng rng(7);
  Tensor calib =
      Tensor::rand_uniform({8, 3, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = MacroMvmEngine::Mode::kExactCost;
  return std::make_unique<DeploymentPlan>(std::move(model), calib,
                                          std::move(options));
}

Tensor make_images(int n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand_uniform({n, 3, kImageSize, kImageSize}, rng, 0.0f,
                              1.0f);
}

void drain(std::vector<std::future<Tensor>>& futures, std::uint64_t* failed) {
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception&) {
      if (failed) ++*failed;
    }
  }
  futures.clear();
}

void print_class_digest(const ClassSnapshot& c, const char* name) {
  std::printf(
      "  %-12s served %5llu req / %5llu img   queue-wait p50 %7.3f ms  "
      "p95 %7.3f ms  p99 %7.3f ms   expired %llu  rejected %llu\n",
      name, static_cast<unsigned long long>(c.served_requests),
      static_cast<unsigned long long>(c.served_images), c.queue_wait.p50_ms,
      c.queue_wait.p95_ms, c.queue_wait.p99_ms,
      static_cast<unsigned long long>(c.expired_requests),
      static_cast<unsigned long long>(c.rejected_requests));
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path;
  double seconds = 2.0;
  bool strict = false;
  bool prometheus = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--prometheus") == 0) {
      prometheus = true;
    } else {
      std::fprintf(stderr,
                   "usage: serve_traffic_mix [--plan PATH] [--seconds=S] "
                   "[--strict] [--prometheus]\n");
      return 2;
    }
  }

  std::unique_ptr<DeploymentPlan> plan;
  if (!plan_path.empty()) {
    plan = load_plan(plan_path);
    std::printf("cold-loaded %s (%d quantized layers)\n", plan_path.c_str(),
                plan->quantized_layer_count());
  } else {
    plan = build_plan();
    std::printf("lowered VGG-8-lite in-process (pass --plan PATH to serve a "
                ".yolocplan artifact)\n");
  }

  SchedulerOptions options;
  options.max_microbatch = 8;
  options.max_queue_depth = 256;
  if (!strict) {
    // Weighted-fair: interactive gets the lion's share but best-effort
    // keeps a bounded slice instead of starving; the interactive lane
    // also gets a 20 ms SLO budget (auto-batching) and — when the pool
    // is big enough — one dedicated worker of headroom.
    options.lane_weights = {8.0, 3.0, 1.0};
    options.lane_slo[static_cast<std::size_t>(Priority::kInteractive)] =
        milliseconds(20);
  }
  if (!strict && parallel_workers() >= 4) {
    // Reservations must leave shared workers for the other lanes.
    options.lane_reservations[static_cast<std::size_t>(
        Priority::kInteractive)] = 1;
  }
  Scheduler scheduler(*plan, options);
  std::printf(
      "scheduler: %d workers (%d reserved interactive), microbatch <= %d, "
      "lane depth cap %llu, policy %s\n",
      scheduler.worker_count(),
      options.lane_reservations[static_cast<std::size_t>(
          Priority::kInteractive)],
      options.max_microbatch,
      static_cast<unsigned long long>(options.max_queue_depth),
      strict ? "strict-priority" : "weighted-fair {8,3,1}");

  const Tensor interactive_img = make_images(1, 11);
  const Tensor batch_img = make_images(4, 22);
  const Tensor best_effort_img = make_images(1, 33);

  SubmitOptions interactive{Priority::kInteractive, milliseconds(100)};
  SubmitOptions batch{Priority::kBatch, milliseconds(0)};
  // Tight enough that a loaded scheduler sheds some of this class.
  SubmitOptions best_effort{Priority::kBestEffort, microseconds(300)};

  std::vector<std::future<Tensor>> in_flight;
  std::uint64_t shed = 0;
  const auto start = Clock::now();
  std::uint64_t wave = 0;
  while (std::chrono::duration<double>(Clock::now() - start).count() <
         seconds) {
    // One interactive probe per wave, a burst of batch work, and some
    // best-effort stragglers. Bounded in-flight window keeps the demo
    // closed-loop.
    in_flight.push_back(scheduler.submit(interactive_img, interactive));
    for (int i = 0; i < 4; ++i) {
      in_flight.push_back(scheduler.submit(batch_img, batch));
    }
    in_flight.push_back(scheduler.submit(best_effort_img, best_effort));
    ++wave;
    if (in_flight.size() >= 96) drain(in_flight, &shed);
  }
  drain(in_flight, &shed);
  scheduler.wait_idle();

  if (prometheus) {
    // What a /metrics endpoint would serve for this run.
    std::fputs(scheduler.to_prometheus().c_str(), stdout);
    return 0;
  }

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  std::printf("\nmetrics snapshot (JSON):\n%s\n\n", snap.to_json().c_str());

  std::printf("digest after %llu waves:\n",
              static_cast<unsigned long long>(wave));
  print_class_digest(snap.classes[0], "interactive");
  print_class_digest(snap.classes[1], "batch");
  print_class_digest(snap.classes[2], "best-effort");
  std::printf(
      "  batches %llu (occupancy mean %.2f, max %d)   rolling %.1f img/s   "
      "macro energy %.1f pJ/img   %llu futures failed (shed/expired)\n",
      static_cast<unsigned long long>(snap.batches),
      snap.avg_batch_occupancy, snap.max_batch_occupancy,
      snap.rolling_images_per_s,
      snap.served_images
          ? scheduler.total_energy_pj() /
                static_cast<double>(snap.served_images)
          : 0.0,
      static_cast<unsigned long long>(shed));
  return 0;
}
